// Key-value store under tiered memory: runs the FlexKVS workload (90/10
// GET/SET, 20% hot keys taking 90% of accesses) against HeMem and against
// static NVM placement, and prints throughput plus latency percentiles.
//
//   $ ./kvstore_tiering

#include <cstdio>

#include "apps/flexkvs.h"
#include "core/hemem.h"
#include "tier/plain.h"

using namespace hemem;

namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.dram_bytes = MiB(48);
  config.nvm_bytes = MiB(192);
  config.page_bytes = KiB(64);
  config.label_scale = 4096.0;
  config.pebs.SetAllPeriods(100);
  return config;
}

KvsConfig Workload() {
  KvsConfig config;
  config.num_keys = 60'000;  // ~70 MiB of 1 KiB values: exceeds DRAM
  config.value_bytes = 1024;
  config.server_threads = 4;
  config.requests_per_thread = 40'000;
  config.warmup_requests_per_thread = 40'000;
  config.bulk_load = true;
  return config;
}

void Report(const char* name, const KvsResult& result, const KvsStats& stats) {
  std::printf("%-10s %8.3f Mops/s   p50 %4lu us   p99 %4lu us   (GC: %lu segments, %lu items moved)\n",
              name, result.mops, result.latency.Percentile(0.5),
              result.latency.Percentile(0.99), stats.segments_cleaned,
              stats.items_relocated);
}

}  // namespace

int main() {
  std::printf("FlexKVS: segmented log + block-chain hash table, dataset > DRAM\n\n");
  {
    Machine machine(SmallMachine());
    Hemem hemem(machine);
    hemem.Start();
    FlexKvs kvs(hemem, Workload());
    kvs.Prepare();
    const KvsResult result = kvs.Run();
    Report("HeMem", result, kvs.kvs_stats());
    std::printf("           pages promoted: %lu, NVM wear: %.1f MiB\n\n",
                hemem.stats().pages_promoted,
                static_cast<double>(machine.nvm().stats().media_bytes_written) / 1048576.0);
  }
  {
    Machine machine(SmallMachine());
    PlainMemory nvm(machine, Tier::kNvm, /*overcommit=*/true);
    FlexKvs kvs(nvm, Workload());
    kvs.Prepare();
    const KvsResult result = kvs.Run();
    Report("all-NVM", result, kvs.kvs_stats());
  }
  return 0;
}
