// Figure 16: NVM writes while running BC on the DRAM-exceeding graph
// (wear; log scale in the paper). Paper shape: MM writes to NVM at a steady
// high rate every iteration; HeMem-PEBS promotes the few write-hot pages
// quickly and settles ~10x below MM; HeMem-PT-Async writes orders of
// magnitude more during early iterations (mass migration of an
// overestimated hot set) and then converges to the PEBS level.

#include "bc_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  constexpr int kIterations = 6;
  PrintTitle("Figure 16", "NVM media bytes written per BC iteration (MB)",
             "Kronecker 2^19 vertices at 1/1024 scale; lower is better (wear)");

  KroneckerConfig kconfig;
  kconfig.scale = kBcLargeScale;
  const CsrGraph graph = GenerateKronecker(kconfig);

  const std::vector<std::string> systems = {"HeMem", "HeMem-PT-Async", "MM"};
  std::vector<BcResult> results;
  for (const auto& system : systems) {
    results.push_back(
        RunBc(system, graph, kIterations, 8192.0, nullptr, &sweep, "wear"));
  }

  std::vector<std::string> cols = {"iteration"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);
  for (int i = 0; i < kIterations; ++i) {
    PrintCell(Fmt("%.0f", i + 1));
    for (const auto& result : results) {
      PrintCell(static_cast<double>(result.iteration_nvm_writes[static_cast<size_t>(i)]) /
                (1024.0 * 1024.0));
    }
    EndRow();
  }
  return 0;
}
