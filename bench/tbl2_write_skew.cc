// Table 2: GUPS with a skewed read/write pattern.
// Of a 256 GB hot set in a 512 GB working set, 128 GB is write-only and the
// rest of the working set is read-only; 90% of accesses go to the hot set.
// Paper: HeMem recognizes the write-only portion and keeps it in DRAM;
// MM is 0.86x and Nimble 0.36x of HeMem.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Table 2", "GUPS write skew",
             "256 GB hot / 512 GB WS, 128 GB write-only, 16 threads (1/256 scale)");
  PrintCols({"system", "gups", "x_vs_hemem", "nvm_media_writes_MB"});

  struct Row {
    std::string name;
    double gups;
    uint64_t wear;
  };
  std::vector<Row> rows;
  for (const std::string system : {"HeMem", "MM", "Nimble"}) {
    GupsConfig config = StandardHotGups();
    config.hot_set = PaperGiB(256);
    config.write_only_hot_fraction = 0.5;  // 128 GB of the 256 GB hot set
    // The 256 GB hot set needs a long convergence window (cf. Figure 6).
    const GupsRunOutput out = RunGupsSystem(system, config, GupsMachine(), std::nullopt,
                                            /*warmup=*/900 * kMillisecond, kGupsWindow,
                                            sweep.host_workers, sweep.policy, &sweep,
                                            "writeskew");
    rows.push_back({system, out.result.gups, out.nvm_media_writes});
  }
  const double hemem = rows[0].gups;
  for (const Row& row : rows) {
    PrintCell(row.name);
    PrintCell(row.gups);
    PrintCell(row.gups / hemem);
    PrintCell(static_cast<double>(row.wear) / (1024.0 * 1024.0));
    EndRow();
  }
  return 0;
}
