// Table 3: FlexKVS throughput (Mops/s) at 16/128/700 GB working sets and
// request latency percentiles (us) at the 700 GB point under 30% load.
// Paper shape: all systems comparable while the working set fits DRAM;
// at 700 GB (hot set still fits) HeMem leads MM/Nimble by ~14-15% and static
// NVM placement by ~18%; HeMem's latency beats MM across percentiles.

#include <optional>

#include "apps/flexkvs.h"
#include "bench_common.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

constexpr double kKvsScale = 256.0;

const SweepOptions* g_sweep = nullptr;

KvsConfig ScaledKvs(double paper_gb) {
  KvsConfig config;
  config.value_bytes = 4096;
  config.server_threads = 8;
  // item ~= 4160 B rounded to 4224; pick num_keys from the dataset size.
  const uint64_t dataset = PaperGiB(paper_gb, kKvsScale);
  config.num_keys = dataset / 4224;
  config.requests_per_thread = 40'000;
  // Long warmup: HeMem's hot-set migration must converge before measuring.
  config.warmup_requests_per_thread = 100'000;
  config.bulk_load = true;
  return config;
}

KvsResult RunKvs(const std::string& system, const KvsConfig& config,
                 const std::string& cell) {
  Machine machine(GupsMachine());  // same 1/256-scale platform discipline
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  FlexKvs kvs(*manager, config);
  kvs.Prepare();
  KvsResult result = kvs.Run();
  if (cell_obs.has_value()) {
    cell_obs->Finish("kvs-" + system + "-" + cell,
                     {{"workload", "flexkvs"}, {"system", system}});
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  g_sweep = &sweep;
  PrintTitle("Table 3", "FlexKVS throughput (Mops/s) and 700 GB latency (us)",
             "8 server threads, 90/10 GET/SET, 20% hot keys / 90% hot accesses "
             "(1/256 scale; DRAM = 192 GB)");

  const std::vector<std::string> systems = {"MM", "HeMem", "Nimble", "NVM"};
  PrintCols({"system", "16GB", "128GB", "700GB", "50p", "90p", "99p", "99.9p"});

  for (const auto& system : systems) {
    PrintCell(system);
    for (const double gb : {16.0, 128.0, 700.0}) {
      PrintCell(RunKvs(system, ScaledKvs(gb), Fmt("ws%.0f", gb)).mops);
    }
    if (system == "MM" || system == "HeMem") {
      // Latency at the 700 GB point, 30% load (paper uses the TAS stack;
      // Nimble crashes TAS there, hence no Nimble latency row).
      KvsConfig config = ScaledKvs(700.0);
      config.load = 0.3;
      config.net_rtt = 8 * kMicrosecond;
      const KvsResult result = RunKvs(system, config, "lat700");
      for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        PrintCell(static_cast<double>(result.latency.Percentile(q)));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        PrintCell(std::string("-"));
      }
    }
    EndRow();
  }
  return 0;
}
