// Shared runner for the GAP betweenness-centrality benches (Figures 14-16).

#ifndef HEMEM_BENCH_BC_BENCH_H_
#define HEMEM_BENCH_BC_BENCH_H_

#include <optional>

#include "apps/bc.h"
#include "apps/graph.h"
#include "bench_common.h"

namespace hemem::bench {

// 1/1024-scale vertex counts; the machine is scaled so the small graph fits
// DRAM and the large one does not (as 2^28 vs 2^29 do against 192 GB).
constexpr int kBcSmallScale = 18;  // stands in for 2^28 vertices
constexpr int kBcLargeScale = 19;  // stands in for 2^29 vertices

// `scale` picks the DRAM:footprint ratio: 4096 gives the small graph head
// room (fits), 8192 makes the large graph oversubscribe DRAM ~2:1.
inline MachineConfig BcMachine(double scale) {
  MachineConfig config = MachineConfig::Scaled(scale);
  config.page_bytes = KiB(64);
  config.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 64.0));
  config.pebs.buffer_capacity = 1 << 17;
  return config;
}

// `sweep`/`cell`: per-cell --metrics-out/--trace-out/--sample-ms outputs
// (cf. CellObs); cell ids come out as "bc-<system>[-<cell>]".
inline BcResult RunBc(const std::string& system, const CsrGraph& graph, int iterations,
                      double machine_scale, uint64_t* nvm_writes_total = nullptr,
                      const SweepOptions* sweep = nullptr,
                      const std::string& cell = "") {
  Machine machine(BcMachine(machine_scale));
  std::optional<CellObs> cell_obs;
  if (sweep != nullptr) {
    cell_obs.emplace(machine, *sweep);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  SimGraph sim_graph(*manager, graph);
  BcConfig config;
  config.iterations = iterations;
  BcBenchmark bc(sim_graph, config);
  bc.Prepare();
  BcResult result = bc.Run();
  if (nvm_writes_total != nullptr) {
    *nvm_writes_total = machine.nvm().stats().media_bytes_written;
  }
  if (cell_obs.has_value()) {
    const std::string id = "bc-" + system + (cell.empty() ? "" : "-" + cell);
    cell_obs->Finish(id, {{"workload", "bc"}, {"system", system}});
  }
  return result;
}

}  // namespace hemem::bench

#endif  // HEMEM_BENCH_BC_BENCH_H_
