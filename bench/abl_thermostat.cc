// Ablation: access-tracking mechanisms compared head-to-head.
// PEBS event sampling (HeMem) vs page-table A/D-bit scanning (HeMem-PT-Async)
// vs Thermostat-style page poisoning (samples a random page subset exactly,
// at a per-access fault cost) on the standard hot-set GUPS. The comparison
// the paper makes qualitatively in Section 6.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Ablation: tracking mechanisms", "hot-set GUPS by tracking approach",
             "512 GB WS / 16 GB hot at 1/256 scale, 16 threads");
  PrintCols({"system", "gups", "promoted", "nvm_wear_MB"});

  for (const std::string system :
       {"HeMem", "HeMem-PT-Async", "Thermostat", "MM", "NVM"}) {
    const GupsRunOutput out = RunGupsSystem(
        system, StandardHotGups(), GupsMachine(), std::nullopt, kGupsWarmup,
        kGupsWindow, sweep.host_workers, sweep.policy, &sweep, "tracking");
    PrintCell(system);
    PrintCell(out.result.gups);
    PrintCell(Fmt("%.0f", static_cast<double>(out.pages_promoted)));
    PrintCell(static_cast<double>(out.nvm_media_writes) / 1048576.0);
    EndRow();
  }
  return 0;
}
