// Figure 10: PEBS sampling-period sensitivity (512 GB WS / 16 GB hot).
// Paper shape: very low periods overwhelm the PEBS thread (up to 30% of
// samples dropped) and show high run-to-run variance; periods between 5k and
// 100k perform well with <0.02% drops; periods above 100k sample too rarely
// and performance falls off.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Figure 10", "PEBS sampling period sensitivity (GUPS)",
             "min/avg/max over 3 seeds; drop rate of PEBS samples; periods are "
             "paper-equivalent (scaled per bench_common.h ScaledPebsPeriod)");
  PrintCols({"period", "min", "avg", "max", "drop_rate"});

  for (const uint64_t paper_period : {300ull, 640ull, 1250ull, 3200ull, 5000ull,
                                      12500ull, 50000ull, 200000ull, 1000000ull}) {
    const uint64_t period = ScaledPebsPeriod(paper_period);
    double min = 1e9;
    double max = 0.0;
    double sum = 0.0;
    double drops = 0.0;
    constexpr int kRuns = 3;
    for (int run = 0; run < kRuns; ++run) {
      MachineConfig mc = GupsMachine();
      mc.pebs.SetAllPeriods(period);
      GupsConfig config = StandardHotGups();
      config.seed = 42 + static_cast<uint64_t>(run);
      const GupsRunOutput out = RunGupsSystem(
          "HeMem", config, mc, std::nullopt, kGupsWarmup, kGupsWindow,
          sweep.host_workers, sweep.policy, &sweep,
          Fmt("p%.0f", static_cast<double>(paper_period)) + Fmt("-r%.0f", run));
      min = std::min(min, out.result.gups);
      max = std::max(max, out.result.gups);
      sum += out.result.gups;
      drops += out.pebs_drop_rate;
    }
    PrintCell(Fmt("%.0f", static_cast<double>(paper_period)));
    PrintCell(min);
    PrintCell(sum / kRuns);
    PrintCell(max);
    PrintCell(drops / kRuns);
    EndRow();
  }
  return 0;
}
