// Figure 5: Uniform-random GUPS vs working set size (higher is better).
// Paper shape: DRAM/HeMem/MM track each other while the working set fits in
// DRAM; MM degrades from conflict misses as the working set approaches DRAM
// capacity while HeMem does not (3.2x at 128 GB); Nimble trails from scan +
// migration overhead; past DRAM capacity every system converges to NVM.

#include "gups_bench.h"

using namespace hemem;
using namespace hemem::bench;

int main() {
  PrintTitle("Figure 5", "Uniform GUPS vs working set (GUPS)",
             "16 threads, 8 B updates; sizes are paper-equivalent GB at 1/256 scale "
             "(DRAM = 192 GB)");
  const std::vector<std::string> systems = {"DRAM", "MM", "HeMem", "Nimble", "NVM"};
  std::vector<std::string> cols = {"ws_GB"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  for (const double ws_gb : {8.0, 16.0, 32.0, 64.0, 128.0, 192.0, 256.0}) {
    PrintCell(Fmt("%.0f", ws_gb));
    for (const auto& system : systems) {
      GupsConfig config;
      config.threads = 16;
      config.working_set = PaperGiB(ws_gb);
      config.hot_set = 0;  // uniform
      // Uniform access needs no classification warmup; 200 ms covers
      // fault-in and cache warm.
      const GupsRunOutput out = RunGupsSystem(system, config, GupsMachine(), std::nullopt,
                                              /*warmup=*/200 * kMillisecond);
      PrintCell(out.result.gups);
    }
    EndRow();
  }
  return 0;
}
