// Figure 5: Uniform-random GUPS vs working set size (higher is better).
// Paper shape: DRAM/HeMem/MM track each other while the working set fits in
// DRAM; MM degrades from conflict misses as the working set approaches DRAM
// capacity while HeMem does not (3.2x at 128 GB); Nimble trails from scan +
// migration overhead; past DRAM capacity every system converges to NVM.
//
// Sweep cells (working-set point x system) are independent sims; run them
// with --jobs=N host threads. --x-list=8,32 overrides the working-set points
// (CI smoke).

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  std::vector<double> ws_points = {8.0, 16.0, 32.0, 64.0, 128.0, 192.0, 256.0};
  if (!sweep.x_list.empty()) {
    ws_points = sweep.x_list;
  }
  const std::vector<std::string> systems = {"DRAM", "MM", "HeMem", "Nimble", "NVM"};

  PrintTitle("Figure 5", "Uniform GUPS vs working set (GUPS)",
             "16 threads, 8 B updates; sizes are paper-equivalent GB at 1/256 scale "
             "(DRAM = 192 GB)");
  std::vector<std::string> cols = {"ws_GB"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  std::vector<double> gups(ws_points.size() * systems.size(), 0.0);
  ParallelFor(gups.size(), sweep.jobs, [&](size_t cell) {
    const double ws_gb = ws_points[cell / systems.size()];
    const std::string& system = systems[cell % systems.size()];
    GupsConfig config;
    config.threads = 16;
    config.working_set = PaperGiB(ws_gb);
    config.hot_set = 0;  // uniform
    // Uniform access needs no classification warmup; 200 ms covers
    // fault-in and cache warm.
    const GupsRunOutput out =
        RunGupsSystem(system, config, GupsMachine(), std::nullopt,
                      /*warmup=*/200 * kMillisecond, kGupsWindow, sweep.host_workers,
                      sweep.policy, &sweep, Fmt("ws%.0f", ws_gb));
    gups[cell] = out.result.gups;
  });

  for (size_t p = 0; p < ws_points.size(); ++p) {
    PrintCell(Fmt("%.0f", ws_points[p]));
    for (size_t s = 0; s < systems.size(); ++s) {
      PrintCell(gups[p * systems.size() + s]);
    }
    EndRow();
  }
  return 0;
}
