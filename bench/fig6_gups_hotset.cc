// Figure 6: GUPS with a hot set, 512 GB working set, varying hot set size
// (higher is better). Paper shape: while the hot set fits DRAM, HeMem keeps
// it there and stays flat; MM degrades as the hot set approaches DRAM
// capacity (up to 2x below HeMem); Nimble trails badly; once the hot set
// exceeds DRAM, everyone converges (HeMem detects this and stops migrating).
//
// Independent (hot-set point x system) cells; --jobs=N parallelizes across
// host threads, --x-list=1,16 overrides the hot-set points.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  std::vector<double> hot_points = {1.0, 4.0, 16.0, 64.0, 128.0, 192.0, 256.0};
  if (!sweep.x_list.empty()) {
    hot_points = sweep.x_list;
  }
  const std::vector<std::string> systems = {"MM", "HeMem", "Nimble"};

  PrintTitle("Figure 6", "GUPS vs hot set size, 512 GB working set (GUPS)",
             "16 threads, 90% of accesses to the hot set; paper-equivalent GB at "
             "1/256 scale (DRAM = 192 GB)");
  std::vector<std::string> cols = {"hot_GB"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  std::vector<double> gups(hot_points.size() * systems.size(), 0.0);
  ParallelFor(gups.size(), sweep.jobs, [&](size_t cell) {
    const double hot_gb = hot_points[cell / systems.size()];
    const std::string& system = systems[cell % systems.size()];
    GupsConfig config = StandardHotGups();
    config.hot_set = PaperGiB(hot_gb);
    // HeMem's classification+migration convergence for multi-GB hot sets
    // needs a longer warmup at this timescale (the paper warms up for
    // minutes); MM/Nimble converge quickly.
    const SimTime warmup = system == "MM" ? 300 * kMillisecond : 700 * kMillisecond;
    const GupsRunOutput out =
        RunGupsSystem(system, config, GupsMachine(), std::nullopt, warmup,
                      kGupsWindow, sweep.host_workers, sweep.policy, &sweep,
                      Fmt("hot%.0f", hot_gb));
    gups[cell] = out.result.gups;
  });

  for (size_t p = 0; p < hot_points.size(); ++p) {
    PrintCell(Fmt("%.0f", hot_points[p]));
    for (size_t s = 0; s < systems.size(); ++s) {
      PrintCell(gups[p * systems.size() + s]);
    }
    EndRow();
  }
  return 0;
}
