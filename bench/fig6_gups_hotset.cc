// Figure 6: GUPS with a hot set, 512 GB working set, varying hot set size
// (higher is better). Paper shape: while the hot set fits DRAM, HeMem keeps
// it there and stays flat; MM degrades as the hot set approaches DRAM
// capacity (up to 2x below HeMem); Nimble trails badly; once the hot set
// exceeds DRAM, everyone converges (HeMem detects this and stops migrating).

#include "gups_bench.h"

using namespace hemem;
using namespace hemem::bench;

int main() {
  PrintTitle("Figure 6", "GUPS vs hot set size, 512 GB working set (GUPS)",
             "16 threads, 90% of accesses to the hot set; paper-equivalent GB at "
             "1/256 scale (DRAM = 192 GB)");
  const std::vector<std::string> systems = {"MM", "HeMem", "Nimble"};
  std::vector<std::string> cols = {"hot_GB"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  for (const double hot_gb : {1.0, 4.0, 16.0, 64.0, 128.0, 192.0, 256.0}) {
    PrintCell(Fmt("%.0f", hot_gb));
    for (const auto& system : systems) {
      GupsConfig config = StandardHotGups();
      config.hot_set = PaperGiB(hot_gb);
      // HeMem's classification+migration convergence for multi-GB hot sets
      // needs a longer warmup at this timescale (the paper warms up for
      // minutes); MM/Nimble converge quickly.
      const SimTime warmup =
          system == "MM" ? 300 * kMillisecond : 700 * kMillisecond;
      const GupsRunOutput out =
          RunGupsSystem(system, config, GupsMachine(), std::nullopt, warmup);
      PrintCell(out.result.gups);
    }
    EndRow();
  }
  return 0;
}
