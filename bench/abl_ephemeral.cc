// Ablation: data-scalability awareness (paper Sections 1 and 3.3).
// "Not all data structures scale unbounded in size... buffers, queues, and
// stacks are small and often ephemeral. They best remain in DRAM." A worker
// continuously allocates small short-lived buffers (below the managed
// threshold, so they are forwarded to the kernel) and works on them while a
// large, cold, managed region fills most of memory. HeMem must (a) leave the
// small allocations in DRAM and (b) keep its 1 GB free-DRAM watermark so
// those allocations never fall back to NVM; X-Mem shows the same rule
// statically; MM has no notion of allocations at all.

#include <optional>

#include "apps/gups.h"
#include "bench_common.h"
#include "sweep.h"

#include "sim/script_thread.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

const SweepOptions* g_sweep = nullptr;

struct Out {
  double alloc_work_us = 0.0;  // mean time to allocate + fill + use a buffer
  double dram_fraction = 0.0;  // small-buffer accesses served from DRAM
};

Out RunEphemeral(const std::string& system) {
  Machine machine(GupsMachine());
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();

  // Background pressure: a big region that eats all of DRAM and most of NVM.
  const uint64_t big = manager->Mmap(PaperGiB(700.0), {.label = "cold-heap"});

  const uint64_t dram_loads_before = machine.dram().stats().loads;
  const uint64_t nvm_loads_before = machine.nvm().stats().loads;

  Out out;
  Rng rng(17);
  SimTime work_total = 0;
  int buffers = 0;
  ScriptThread t([&, n = 0u](ScriptThread& self) mutable {
    // Touch the cold heap now and then (keeps pressure on placement)...
    manager->Access(self, big + rng.NextBounded(PaperGiB(700.0) / 64) * 64, 64,
                    AccessKind::kStore);
    // ...and every few ops, run one ephemeral buffer lifecycle: allocate a
    // 64 KiB scratch buffer, stream it, read it back, free it.
    if (n % 4 == 0) {
      const SimTime t0 = self.now();
      const uint64_t buf = manager->Mmap(KiB(64), {.label = "scratch"});
      for (uint64_t off = 0; off < KiB(64); off += KiB(16)) {
        manager->Access(self, buf + off, KiB(16), AccessKind::kStore);
      }
      for (uint64_t off = 0; off < KiB(64); off += KiB(16)) {
        manager->Access(self, buf + off, KiB(16), AccessKind::kLoad);
      }
      manager->Munmap(buf);
      work_total += self.now() - t0;
      buffers++;
    }
    return ++n < 40'000;
  });
  machine.engine().AddThread(&t);
  machine.engine().Run();

  out.alloc_work_us = static_cast<double>(work_total) / buffers / 1000.0;
  const double dram_loads =
      static_cast<double>(machine.dram().stats().loads - dram_loads_before);
  const double nvm_loads =
      static_cast<double>(machine.nvm().stats().loads - nvm_loads_before);
  out.dram_fraction = dram_loads / (dram_loads + nvm_loads);
  if (cell_obs.has_value()) {
    cell_obs->Finish("ephemeral-" + system,
                     {{"workload", "ephemeral"}, {"system", system}});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  g_sweep = &sweep;
  PrintTitle("Ablation: ephemeral allocations", "small short-lived buffers under pressure",
             "700 GB cold heap resident; 64 KiB scratch buffers allocated/freed "
             "continuously");
  PrintCols({"system", "buffer_cycle_us", "dram_load_frac"});

  for (const std::string system : {"HeMem", "X-Mem", "MM", "NVM"}) {
    const Out out = RunEphemeral(system);
    PrintCell(system);
    PrintCell(out.alloc_work_us);
    PrintCell(out.dram_fraction);
    EndRow();
  }
  return 0;
}
