// Figure 2: DRAM and Optane throughput at 16 threads, varying access size.
// Paper shape: sequential reads top out quickly (Optane saturates almost
// immediately); small random accesses suffer on both devices, with Optane
// additionally penalized below its 256 B media granularity; the
// sequential/random gap closes as the block size grows.

#include "bench_common.h"
#include "device_workload.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  // Raw-device bench: no Machine, so the obs outputs have nothing to write,
  // but the sweep flags must parse so drivers can pass them uniformly.
  (void)ParseSweepArgs(argc, argv);
  PrintTitle("Figure 2", "Throughput vs access size, 16 threads (GB/s)",
             "columns are device/pattern/direction");
  PrintCols({"size_B", "dram_seq_rd", "dram_rnd_rd", "dram_seq_wr", "dram_rnd_wr",
             "nvm_seq_rd", "nvm_rnd_rd", "nvm_seq_wr", "nvm_rnd_wr"});

  for (const uint32_t size : {64u, 128u, 256u, 512u, 1024u, 4096u, 16384u}) {
    PrintCell(static_cast<double>(size));
    for (const bool is_dram : {true, false}) {
      for (const auto [kind, seq] :
           {std::pair{AccessKind::kLoad, true}, {AccessKind::kLoad, false},
            {AccessKind::kStore, true}, {AccessKind::kStore, false}}) {
        MemoryDevice dev(is_dram ? DeviceParams::Dram(GiB(192))
                                 : DeviceParams::OptaneNvm(GiB(768)));
        PrintCell(DeviceThroughputGBs(dev, 16, size, kind, seq));
      }
    }
    EndRow();
  }
  return 0;
}
