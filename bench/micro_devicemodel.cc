// google-benchmark microbenchmarks of the simulator substrate itself: how
// fast the host can push accesses through the device model, page table, and
// PEBS machinery. These guard against simulator-performance regressions
// (the paper benches simulate hundreds of millions of accesses).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mem/device.h"
#include "pebs/pebs.h"
#include "vm/page_table.h"

namespace hemem {
namespace {

void BM_DeviceRandomAccess(benchmark::State& state) {
  MemoryDevice dev(DeviceParams::Dram(GiB(192)));
  Rng rng(1);
  SimTime t = 0;
  for (auto _ : state) {
    t = dev.Access(t, rng.NextBounded(GiB(192) / 64) * 64, 64, AccessKind::kLoad, 0);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DeviceRandomAccess);

void BM_DeviceSequentialAccess(benchmark::State& state) {
  MemoryDevice dev(DeviceParams::OptaneNvm(GiB(768)));
  SimTime t = 0;
  uint64_t addr = 0;
  for (auto _ : state) {
    t = dev.Access(t, addr, 256, AccessKind::kLoad, 0);
    addr += 256;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DeviceSequentialAccess);

void BM_PageTableLookup(benchmark::State& state) {
  PageTable pt;
  std::vector<uint64_t> bases;
  for (int i = 0; i < 8; ++i) {
    const uint64_t base = pt.ReserveVa(GiB(1), MiB(2));
    pt.MapRegion(base, GiB(1), MiB(2), true, "r");
    bases.push_back(base);
  }
  Rng rng(2);
  for (auto _ : state) {
    const uint64_t va = bases[rng.NextBounded(8)] + rng.NextBounded(GiB(1));
    benchmark::DoNotOptimize(pt.Lookup(va));
  }
}
BENCHMARK(BM_PageTableLookup);

void BM_PebsCountAccess(benchmark::State& state) {
  PebsBuffer pebs;
  uint64_t va = 0;
  for (auto _ : state) {
    pebs.CountAccess(0, va++, PebsEvent::kStore);
  }
  benchmark::DoNotOptimize(pebs.pending());
}
BENCHMARK(BM_PebsCountAccess);

void BM_RadixScanCost(benchmark::State& state) {
  RadixCostModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScanTime(TiB(1), KiB(4)));
  }
}
BENCHMARK(BM_RadixScanCost);

}  // namespace
}  // namespace hemem

BENCHMARK_MAIN();
