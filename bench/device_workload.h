// Raw-device workload driver shared by the Table 1 / Figure 1 / Figure 2
// characterization benches: N logical streams of back-to-back accesses
// against one memory device, sequential or random, returning aggregate GB/s.

#ifndef HEMEM_BENCH_DEVICE_WORKLOAD_H_
#define HEMEM_BENCH_DEVICE_WORKLOAD_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "mem/device.h"

namespace hemem::bench {

inline double DeviceThroughputGBs(MemoryDevice& dev, int threads, uint32_t size,
                                  AccessKind kind, bool sequential,
                                  int accesses_per_thread = 4000) {
  std::vector<SimTime> clock(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> addr(static_cast<size_t>(threads));
  Rng rng(1234);
  for (int t = 0; t < threads; ++t) {
    // Streams start far apart so sequential runs never merge.
    addr[static_cast<size_t>(t)] = static_cast<uint64_t>(t) * GiB(4);
  }
  SimTime end = 0;
  for (int i = 0; i < accesses_per_thread; ++i) {
    for (int t = 0; t < threads; ++t) {
      const auto ti = static_cast<size_t>(t);
      const uint64_t a =
          sequential ? addr[ti] : rng.NextBounded(dev.capacity() / size) * size;
      clock[ti] = dev.Access(clock[ti], a, size, kind, static_cast<uint32_t>(t));
      addr[ti] += size;
      end = std::max(end, clock[ti]);
    }
  }
  const double bytes =
      static_cast<double>(accesses_per_thread) * threads * static_cast<double>(size);
  return bytes / static_cast<double>(end) * 1e9 / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace hemem::bench

#endif  // HEMEM_BENCH_DEVICE_WORKLOAD_H_
