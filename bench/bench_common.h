// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section 5). Scale: machines are the paper's 192 GiB DRAM /
// 768 GiB NVM socket divided by a per-experiment factor (paper ratios —
// DRAM:NVM, hot:working set, crossover points — are preserved), and row
// labels always print *paper-equivalent* sizes. Absolute throughput numbers
// are those of the simulated devices; the claims to check are orderings and
// crossover shapes, recorded in EXPERIMENTS.md.

#ifndef HEMEM_BENCH_BENCH_COMMON_H_
#define HEMEM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/hemem.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "sweep.h"
#include "tier/machine.h"
#include "tier/manager.h"
#include "tier/memory_mode.h"
#include "tier/nimble.h"
#include "tier/plain.h"
#include "tier/thermostat.h"
#include "tier/xmem.h"

namespace hemem::bench {

// Constructs a tiering system by name. Known names: DRAM, NVM, MM, Nimble,
// X-Mem, HeMem, HeMem-PT-Sync, HeMem-PT-Async, HeMem-Threads (CPU-copy
// migration instead of DMA). `policy` selects the migration policy for the
// systems that classify through one (the HeMem variants and Thermostat);
// hardware/static baselines ignore it. `migration` ("exclusive" or "nomad")
// selects the HeMem migration mode; the non-HeMem systems ignore it.
inline std::unique_ptr<TieredMemoryManager> MakeSystem(
    const std::string& kind, Machine& machine,
    const policy::PolicyChoice& policy = {},
    const std::string& migration = "exclusive") {
  if (kind == "DRAM") {
    return std::make_unique<PlainMemory>(machine, Tier::kDram, /*overcommit=*/true);
  }
  if (kind == "NVM") {
    return std::make_unique<PlainMemory>(machine, Tier::kNvm, /*overcommit=*/true);
  }
  if (kind == "MM") {
    return std::make_unique<MemoryMode>(machine);
  }
  if (kind == "Nimble") {
    return std::make_unique<Nimble>(machine);
  }
  if (kind == "X-Mem") {
    return std::make_unique<XMem>(machine);
  }
  if (kind == "Thermostat") {
    ThermostatParams tparams;
    tparams.policy = policy.name;
    tparams.policy_spec = policy.spec;
    return std::make_unique<Thermostat>(machine, tparams);
  }
  HememParams params;
  params.policy = policy.name;
  params.policy_spec = policy.spec;
  if (migration == "nomad") {
    params.migration = HememParams::MigrationMode::kNomad;
  }
  if (kind == "HeMem-PT-Sync") {
    params.scan_mode = HememParams::ScanMode::kPtSync;
  } else if (kind == "HeMem-PT-Async") {
    params.scan_mode = HememParams::ScanMode::kPtAsync;
  } else if (kind == "HeMem-Threads") {
    params.use_dma = false;
  }
  if (params.scan_mode != HememParams::ScanMode::kPebs) {
    // The PT variants' fidelity loss (binary accessed bits) depends on the
    // ratio of scan period to per-page touch intervals, which shrinks by
    // the page-count factor (~8x here), not the full capacity factor the
    // manager divides periods by. Pre-multiply so the scaled period keeps
    // the paper's ratio.
    params.pt_scan_period *= static_cast<SimTime>(machine.config().label_scale / 32.0);
  }
  return std::make_unique<Hemem>(machine, params);
}

constexpr double kGupsScale = 256.0;
// Tracking granularity also scales (2 MiB -> 64 KiB): with capacities at
// 1/256, keeping 2 MiB pages would shrink hot sets to a handful of pages and
// concentrate per-page traffic ~256x, distorting classification dynamics.
// 64 KiB keeps page *counts* within 8x of the paper's.
constexpr uint64_t kGupsPageBytes = KiB(64);
constexpr uint64_t kPaperPebsPeriod = 5000;
// Sampling-period divisor: chosen so that (a) large hot sets (thousands of
// 64 KiB pages) classify within the compressed timescale and (b) the
// aggregate sample rate stays below the PEBS thread's drain capacity at
// full converged throughput (drops are reserved for Figure 10's smallest
// periods, as in the paper).
constexpr double kPerPageTrafficFactor = 80.0;

// Scales a paper PEBS period to the bench platform. Per-page traffic rates
// grow by `scale` on the shrunken machine, so some period reduction is
// needed for per-page sampling density; but the PEBS thread's per-record
// processing cost is a host-CPU cost that does NOT compress, so scaling the
// period by the full factor would push default operation into the
// sample-drop regime the paper reserves for its smallest periods. The
// square root splits the difference; the Figure 10 sweep still covers both
// failure modes. Clamped: a period below ~16 accesses is not realizable.
inline uint64_t ScaledPebsPeriod(uint64_t paper_period,
                                 double factor = kPerPageTrafficFactor) {
  return std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(paper_period) / factor), 16);
}

// The standard GUPS-bench platform: paper socket at 1/256 scale
// (768 MiB DRAM, 3 GiB NVM, 2 MiB pages), with the PEBS period scaled to
// match (paper 5,000 -> ~312).
inline MachineConfig GupsMachine() {
  MachineConfig config = MachineConfig::Scaled(kGupsScale);
  config.page_bytes = kGupsPageBytes;
  config.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod));
  // Sample rates scale up with the compressed timescale; the preallocated
  // buffer scales with them.
  config.pebs.buffer_capacity = 1 << 17;
  return config;
}

// Paper-equivalent GiB -> machine bytes at the GUPS scale.
inline uint64_t PaperGiB(double gib, double scale = kGupsScale) {
  return static_cast<uint64_t>(gib * 1024.0 * 1024.0 * 1024.0 / scale);
}

// Machine-readable bench reports: when HEMEM_REPORT_DIR is set, writes
// $HEMEM_REPORT_DIR/<id>.json with the machine's full metrics snapshot —
// the JSON twin of whatever cells the bench printed. Callers pick ids that
// identify the sweep point; a repeated id overwrites the earlier file.
inline void MaybeWriteReport(Machine& machine, const std::string& id,
                             obs::ReportMeta meta = {}) {
  const char* dir = std::getenv("HEMEM_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  meta.emplace_back("id", id);
  // Sweep cells may finish concurrently under --jobs; ids are unique per
  // cell, but serialize the writes so partially-written files can't race a
  // reader (and so any shared WriteRunReport internals stay single-entry).
  static std::mutex report_mutex;
  std::lock_guard<std::mutex> lock(report_mutex);
  std::error_code ec;  // best-effort, like the write itself
  std::filesystem::create_directories(dir, ec);
  obs::WriteRunReport(std::string(dir) + "/" + id + ".json",
                      machine.metrics().Snapshot(), /*sampler=*/nullptr, meta);
}

// Splices a cell id into a base output path before its extension
// ("reports/m.json" + "gups-HeMem-ws64" -> "reports/m-gups-HeMem-ws64.json"),
// so one --metrics-out/--trace-out flag fans out to one file per sweep cell.
inline std::string CellOutName(const std::string& base, const std::string& id) {
  const size_t dot = base.rfind('.');
  const size_t slash = base.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "-" + id + ".json";
  }
  return base.substr(0, dot) + "-" + id + base.substr(dot);
}

// Per-cell observability wiring for the sweep benches — the bench twin of
// hemem_sim's --metrics-out/--trace-out/--sample-ms flags. Construct right
// after the cell's Machine and BEFORE its manager (tracing has to be on when
// managers register their trace tracks); call Finish(id) after the workload,
// with an id unique per cell so concurrent --jobs cells never share a file.
class CellObs {
 public:
  CellObs(Machine& machine, const SweepOptions& sweep)
      : machine_(machine),
        metrics_out_(sweep.metrics_out),
        trace_out_(sweep.trace_out) {
    if (!trace_out_.empty()) {
      machine.EnableTracing();
    }
    if (sweep.sample_ms > 0.0 && !metrics_out_.empty()) {
      sampler_ = std::make_unique<obs::MetricsSampler>(
          machine.metrics(),
          static_cast<SimTime>(sweep.sample_ms * static_cast<double>(kMillisecond)));
      machine.engine().AddObserverThread(sampler_.get());
    }
  }

  void Finish(const std::string& id, obs::ReportMeta meta = {}) {
    if (!metrics_out_.empty()) {
      meta.emplace_back("id", id);
      obs::WriteRunReport(CellOutName(metrics_out_, id),
                          machine_.metrics().Snapshot(), sampler_.get(), meta);
    }
    if (!trace_out_.empty()) {
      machine_.tracer().WriteJson(CellOutName(trace_out_, id));
    }
  }

 private:
  Machine& machine_;
  std::string metrics_out_;
  std::string trace_out_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
};

// ---------------------------------------------------------------------------
// Output helpers: every bench prints a commented header followed by
// whitespace-aligned columns, one row per x-axis point.

inline void PrintTitle(const char* id, const char* what, const char* note) {
  std::printf("# %s: %s\n", id, what);
  std::printf("# %s\n", note);
}

inline void PrintCols(const std::vector<std::string>& cols) {
  for (const auto& c : cols) {
    std::printf("%-14s", c.c_str());
  }
  std::printf("\n");
}

inline void PrintCell(const std::string& v) { std::printf("%-14s", v.c_str()); }
inline void PrintCell(double v) { std::printf("%-14.4f", v); }
inline void EndRow() { std::printf("\n"); }

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace hemem::bench

#endif  // HEMEM_BENCH_BENCH_COMMON_H_
