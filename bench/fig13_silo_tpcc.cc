// Figure 13: Silo TPC-C warehouse scalability (higher is better).
// 16 threads, warehouses swept so the working set crosses DRAM capacity at
// 864 warehouses. Paper shape: HeMem leads MM (up to 13%) and Nimble (up to
// 82%) while the working set fits DRAM; past DRAM, MM edges out HeMem (17%);
// static NVM placement (X-Mem) runs at ~1/3 of HeMem/MM throughput.

#include <optional>

#include "apps/silo.h"
#include "bench_common.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

const SweepOptions* g_sweep = nullptr;

// Machine scaled so 864 warehouses' footprint ~= DRAM capacity; tracking
// granularity and sampling period scale with it (cf. GupsMachine).
MachineConfig TpccMachine() {
  MachineConfig config = MachineConfig::Scaled(115.0);
  config.page_bytes = KiB(64);
  config.pebs.SetAllPeriods(ScaledPebsPeriod(kPaperPebsPeriod, 40.0));
  config.pebs.buffer_capacity = 1 << 17;
  return config;
}

SiloConfig ScaledSilo(int warehouses) {
  SiloConfig config;
  config.warehouses = warehouses;
  config.items = 1024;                   // scaled from 100k
  config.customers_per_district = 64;    // scaled from 3,000
  config.order_capacity_per_district = 128;
  return config;
}

double RunTpcc(const std::string& system, int warehouses) {
  Machine machine(TpccMachine());
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  SiloDb db(*manager, ScaledSilo(warehouses));
  TpccConfig config;
  config.threads = 16;
  config.transactions_per_thread = 1500;
  config.warmup_transactions_per_thread = 500;
  TpccBenchmark tpcc(db, config);
  tpcc.Prepare();
  const double txn_per_sec = tpcc.Run().txn_per_sec;
  if (cell_obs.has_value()) {
    cell_obs->Finish("tpcc-" + system + "-w" + std::to_string(warehouses),
                     {{"workload", "tpcc"}, {"system", system}});
  }
  return txn_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  g_sweep = &sweep;
  PrintTitle("Figure 13", "Silo TPC-C throughput vs warehouses (txn/s)",
             "16 threads; 864 warehouses ~= DRAM capacity (1/115 scale)");
  const std::vector<std::string> systems = {"HeMem", "MM", "Nimble", "NVM"};
  std::vector<std::string> cols = {"warehouses"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  for (const int warehouses : {16, 108, 432, 864, 1296, 1728}) {
    PrintCell(Fmt("%.0f", warehouses));
    for (const auto& system : systems) {
      PrintCell(RunTpcc(system, warehouses));
    }
    EndRow();
  }
  return 0;
}
