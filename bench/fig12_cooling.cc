// Figure 12: Memory-cooling threshold sensitivity.
// Dynamic hot-set scenario (as Figure 9); the cooling threshold controls how
// aggressively access counts decay. Paper shape: cooling at the hot
// threshold (8) underestimates the hot set (too aggressive); moderate values
// (13-26) adapt quickly after the shift; very high values (30+) leave too
// many pages hot, which then compete for DRAM.

#include <numeric>

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  // The shift happens only after classification+migration converge (~400 ms
  // at this scale, cf. Figure 9); "steady" is then meaningful.
  constexpr SimTime kShiftAt = 450 * kMillisecond;
  constexpr SimTime kEnd = 700 * kMillisecond;
  constexpr SimTime kBucket = 25 * kMillisecond;

  PrintTitle("Figure 12", "Cooling threshold sensitivity",
             "hot-set shift mid-run; steady = GUPS before shift, "
             "recovered = GUPS over the final 100 ms");
  PrintCols({"cooling", "steady", "recovered"});

  for (const uint32_t cooling : {8u, 10u, 13u, 18u, 22u, 26u, 30u, 40u}) {
    HememParams params;
    params.cooling_threshold = cooling;
    GupsConfig config = StandardHotGups();
    config.shift_at = kShiftAt;
    config.shift_bytes = PaperGiB(4);
    config.series_bucket = kBucket;
    const GupsRunOutput out =
        RunGupsSystem("HeMem", config, GupsMachine(), params,
                      /*warmup=*/100 * kMillisecond, /*window=*/kEnd - 100 * kMillisecond,
                      sweep.host_workers, sweep.policy, &sweep,
                      Fmt("cool%.0f", static_cast<double>(cooling)));

    auto bucket_gups = [&](size_t b) {
      return b < out.series.size() ? out.series[b] / static_cast<double>(kBucket) : 0.0;
    };
    const size_t shift_bucket = static_cast<size_t>(kShiftAt / kBucket);
    const size_t end_bucket = static_cast<size_t>(kEnd / kBucket);
    double steady = 0.0;
    for (size_t b = shift_bucket - 4; b < shift_bucket; ++b) {
      steady += bucket_gups(b) / 4.0;
    }
    double recovered = 0.0;
    for (size_t b = end_bucket - 4; b < end_bucket; ++b) {
      recovered += bucket_gups(b) / 4.0;
    }
    PrintCell(Fmt("%.0f", static_cast<double>(cooling)));
    PrintCell(steady);
    PrintCell(recovered);
    EndRow();
  }
  return 0;
}
