// Table 1: Main memory technology comparison.
// Paper: DDR4 DRAM 82 ns, 107/80 GB/s, 1x capacity;
//        Optane DC 175/94 ns, 32/11.2 GB/s, 8x capacity.

#include "bench_common.h"
#include "device_workload.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  // Raw-device bench: no Machine, so the obs outputs have nothing to write,
  // but the sweep flags must parse so drivers can pass them uniformly.
  (void)ParseSweepArgs(argc, argv);
  PrintTitle("Table 1", "Main memory technology comparison",
             "bandwidths measured on the device model with 16 streaming threads");

  MemoryDevice dram(DeviceParams::Dram(GiB(192)));
  MemoryDevice dram2(DeviceParams::Dram(GiB(192)));
  MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
  MemoryDevice nvm2(DeviceParams::OptaneNvm(GiB(768)));

  const double dram_read = DeviceThroughputGBs(dram, 16, 4096, AccessKind::kLoad, true);
  const double dram_write = DeviceThroughputGBs(dram2, 16, 4096, AccessKind::kStore, true);
  const double nvm_read = DeviceThroughputGBs(nvm, 16, 4096, AccessKind::kLoad, true);
  const double nvm_write = DeviceThroughputGBs(nvm2, 16, 4096, AccessKind::kStore, true);

  PrintCols({"memory", "r_latency_ns", "w_latency_ns", "r_GBps", "w_GBps", "capacity"});
  PrintCell("DDR4-DRAM");
  PrintCell(static_cast<double>(dram.params().read_latency));
  PrintCell(static_cast<double>(dram.params().write_latency));
  PrintCell(dram_read);
  PrintCell(dram_write);
  PrintCell("1x");
  EndRow();
  PrintCell("Optane-DC");
  PrintCell(static_cast<double>(nvm.params().read_latency));
  PrintCell(static_cast<double>(nvm.params().write_latency));
  PrintCell(nvm_read);
  PrintCell(nvm_write);
  PrintCell("4x-8x");
  EndRow();
  return 0;
}
