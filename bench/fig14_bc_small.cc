// Figure 14: GAP betweenness centrality, graph fits in DRAM
// (2^28 vertices on the paper's testbed; 2^18 at 1/1024 scale here).
// Paper shape: HeMem keeps everything in DRAM and beats MM by ~93% on
// average (MM suffers conflict misses into NVM, and BC's small, write-heavy
// accesses are the worst case for Optane); Nimble lands between them.

#include "bc_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  constexpr int kIterations = 5;
  PrintTitle("Figure 14", "BC per-iteration runtime, graph fits DRAM (ms)",
             "Kronecker 2^18 vertices / degree 16; footprint ~78% of DRAM (fits)");

  KroneckerConfig kconfig;
  kconfig.scale = kBcSmallScale;
  const CsrGraph graph = GenerateKronecker(kconfig);

  const std::vector<std::string> systems = {"DRAM", "HeMem", "Nimble", "MM"};
  std::vector<BcResult> results;
  for (const auto& system : systems) {
    results.push_back(
        RunBc(system, graph, kIterations, 6144.0, nullptr, &sweep, "small"));
  }

  std::vector<std::string> cols = {"iteration"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);
  for (int i = 0; i < kIterations; ++i) {
    PrintCell(Fmt("%.0f", i + 1));
    for (const auto& result : results) {
      PrintCell(static_cast<double>(result.iteration_time[static_cast<size_t>(i)]) / 1e6);
    }
    EndRow();
  }
  return 0;
}
