// Adversarial migration churn: exclusive vs nomad transactional migration.
//
// The workload is built to punish exclusive migration: a hot set that
// rotates every 50 ms (each rotation swaps in chunks the tiering system has
// just demoted), with a write-only slice so the remaining hot data is
// read-mostly. Under exclusive migration every store that races a promotion
// copy stalls for the userfaultfd round trip plus the remaining copy time
// (wp_wait_ns); under nomad the same store aborts that page's transaction
// and proceeds immediately, and demotions of still-clean pages flip back
// onto their retained NVM shadow with zero bytes moved (shadow_demotions).
//
// Expected shape (EXPERIMENTS.md "Adversarial churn"): nomad holds GUPS
// through the rotations, cuts wp_wait_ns by >=10x, and serves a nonzero
// share of demotions as shadow flips; the price is the aborted-copy
// bandwidth (txn_aborts) and the shadow frames held on NVM.

#include <memory>
#include <string>
#include <vector>

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

constexpr SimTime kWarmup = 150 * kMillisecond;
constexpr SimTime kEnd = 900 * kMillisecond;
constexpr SimTime kShiftPeriod = 50 * kMillisecond;

struct ModeResult {
  GupsResult result;
  ManagerStats stats;
  HememStats hstats;
  uint64_t shadow_pages = 0;
};

ModeResult RunMode(const std::string& mode, const SweepOptions& sweep) {
  Machine machine(GupsMachine());
  CellObs obs(machine, sweep);
  machine.EnableHostWorkers(sweep.host_workers);
  HememParams params;
  params.policy = sweep.policy.name;
  params.policy_spec = sweep.policy.spec;
  if (mode == "nomad") {
    params.migration = HememParams::MigrationMode::kNomad;
  }
  auto manager = std::make_unique<Hemem>(machine, params);
  manager->Start();

  GupsConfig config = StandardHotGups();
  // 75/25 hot/cold split (vs the standard 90/10): the extra cold traffic is
  // what lets PEBS re-sample rotated-out pages quickly enough to reclassify
  // them cold within the window — the paper's 90/10 split leaves a cold
  // page sampled roughly once per run at this scale, so stale-hot pages
  // would pin the DRAM hot list and demotion would never reach them.
  config.hot_fraction = 0.75;
  config.shift_at = kWarmup;
  config.shift_period = kShiftPeriod;
  config.shift_bytes = PaperGiB(8);
  // A quarter of the hot set takes pure stores; everything else is pure
  // loads, so demoted-then-clean pages exist for nomad's shadow flips.
  config.write_only_hot_fraction = 0.25;
  // Demand-fault the working set instead of prefilling: prefill would seed
  // DRAM with ~12k never-hot pages at the front of the cold list, and every
  // demotion for the whole run would drain that pool instead of reaching
  // the rotated-out (shadow-holding) pages this bench is about.
  config.prefill = false;
  config.series_bucket = 20 * kMillisecond;
  config.updates_per_thread = ~0ull >> 2;  // deadline-bounded
  config.measure_after = kWarmup;
  GupsBenchmark gups(*manager, config);
  gups.Prepare();

  ModeResult out;
  out.result = gups.Run(kEnd);
  out.stats = manager->stats();
  out.hstats = manager->hstats();
  out.shadow_pages = manager->shadow_pages();
  const std::string id =
      mode == "nomad" ? "thrash-HeMem-nomad" : "thrash-HeMem";
  MaybeWriteReport(machine, id,
                   {{"workload", "thrash"}, {"migration", mode}});
  obs.Finish(id, {{"workload", "thrash"}, {"migration", mode}});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);

  PrintTitle("Thrash", "GUPS under adversarial hot-set rotation",
             "8 GB (paper-equivalent) rotates every 50 ms; exclusive vs "
             "nomad migration");

  // --migration selects a single mode (CI smoke); the default runs both so
  // the printed table is the comparison.
  std::vector<std::string> modes;
  if (sweep.migration == "nomad") {
    modes = {"nomad"};
  } else {
    modes = {"exclusive", "nomad"};
  }

  PrintCols({"mode", "gups", "wp_wait_ms", "wp_faults", "promoted", "demoted",
             "txn_aborts", "shadow_flips"});
  for (const std::string& mode : modes) {
    const ModeResult out = RunMode(mode, sweep);
    PrintCell(mode);
    PrintCell(out.result.gups);
    PrintCell(Fmt("%.3f", static_cast<double>(out.stats.wp_wait_ns) / 1e6));
    PrintCell(Fmt("%.0f", static_cast<double>(out.stats.wp_faults)));
    PrintCell(Fmt("%.0f", static_cast<double>(out.stats.pages_promoted)));
    PrintCell(Fmt("%.0f", static_cast<double>(out.stats.pages_demoted)));
    PrintCell(Fmt("%.0f", static_cast<double>(out.hstats.txn_aborts)));
    PrintCell(Fmt("%.0f", static_cast<double>(out.hstats.shadow_demotions)));
    EndRow();
  }
  return 0;
}
