// Shared GUPS runner for the Figure 5-12 / Table 2 benches.
//
// Runs are fixed-window: workers warm up (fault-in + classification +
// migration convergence) until `measure_after`, then updates are counted
// until the deadline. Windows are sized for the 1/256-scale platform, where
// convergence dynamics play out ~256x faster than on the paper's testbed.

#ifndef HEMEM_BENCH_GUPS_BENCH_H_
#define HEMEM_BENCH_GUPS_BENCH_H_

#include <optional>

#include "apps/gups.h"
#include "bench_common.h"

namespace hemem::bench {

constexpr SimTime kGupsWarmup = 400 * kMillisecond;
constexpr SimTime kGupsWindow = 60 * kMillisecond;

struct GupsRunOutput {
  GupsResult result;
  uint64_t nvm_media_writes = 0;
  uint64_t pages_promoted = 0;
  uint64_t pages_demoted = 0;
  double pebs_drop_rate = 0.0;
  std::vector<double> series;  // updates per series bucket
};

// `sweep` (optional) carries the per-cell observability outputs
// (--metrics-out/--trace-out/--sample-ms); `cell` disambiguates this run's
// derived file names within the bench's sweep ("ws64", "t8", ...).
inline GupsRunOutput RunGupsSystem(const std::string& system, GupsConfig config,
                                   MachineConfig machine_config = GupsMachine(),
                                   std::optional<HememParams> hemem_params = std::nullopt,
                                   SimTime warmup = kGupsWarmup,
                                   SimTime window = kGupsWindow,
                                   int host_workers = 1,
                                   const policy::PolicyChoice& policy = {},
                                   const SweepOptions* sweep = nullptr,
                                   const std::string& cell = "") {
  Machine machine(machine_config);
  std::optional<CellObs> cell_obs;
  if (sweep != nullptr) {
    cell_obs.emplace(machine, *sweep);
  }
  machine.EnableHostWorkers(host_workers);
  const bool nomad = sweep != nullptr && sweep->migration == "nomad";
  std::unique_ptr<TieredMemoryManager> manager;
  if (hemem_params.has_value()) {
    HememParams params = *hemem_params;
    params.policy = policy.name;
    params.policy_spec = policy.spec;
    if (nomad) {
      params.migration = HememParams::MigrationMode::kNomad;
    }
    manager = std::make_unique<Hemem>(machine, params);
  } else {
    manager = MakeSystem(system, machine, policy,
                         nomad ? "nomad" : "exclusive");
  }
  manager->Start();

  config.updates_per_thread = ~0ull >> 2;  // deadline-bounded
  config.measure_after = warmup;
  GupsBenchmark gups(*manager, config);
  gups.Prepare();

  GupsRunOutput out;
  out.result = gups.Run(warmup + window);
  out.nvm_media_writes = machine.nvm().stats().media_bytes_written;
  out.pages_promoted = manager->stats().pages_promoted;
  out.pages_demoted = manager->stats().pages_demoted;
  out.pebs_drop_rate = machine.pebs().stats().DropRate();
  out.series = gups.series().buckets();
  // Non-default policies get their own report files so a policy matrix over
  // one system doesn't overwrite itself; likewise nomad-mode HeMem runs get
  // a "-nomad" suffix so exclusive baselines are never overwritten (the
  // non-HeMem baselines ignore --migration and keep their plain ids).
  std::string id = policy.name == "default"
                       ? "gups-" + system
                       : "gups-" + system + "-" + policy.name;
  if (nomad && (hemem_params.has_value() || system.rfind("HeMem", 0) == 0)) {
    id += "-nomad";
  }
  MaybeWriteReport(machine, id, {{"workload", "gups"}, {"policy", policy.name}});
  if (cell_obs.has_value()) {
    cell_obs->Finish(cell.empty() ? id : id + "-" + cell,
                     {{"workload", "gups"}, {"system", system}, {"policy", policy.name}});
  }
  return out;
}

// The paper's standard hot-set configuration: 512 GB working set, 16 GB hot,
// 16 threads, 90% of operations to the hot set. Hot-chunk granularity is
// auto-sized (see GupsBenchmark): sub-page for small hot sets so each
// thread holds several chunks, page-sized otherwise.
inline GupsConfig StandardHotGups(int threads = 16) {
  GupsConfig config;
  config.threads = threads;
  config.working_set = PaperGiB(512);
  config.hot_set = PaperGiB(16);
  config.hot_fraction = 0.9;
  return config;
}

}  // namespace hemem::bench

#endif  // HEMEM_BENCH_GUPS_BENCH_H_
