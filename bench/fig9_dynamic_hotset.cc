// Figure 9: Instantaneous GUPS under a hot-set shift.
// 512 GB working set, 16 GB hot set; mid-run, 4 GB of the hot set goes cold
// and 4 GB of cold data becomes hot. Paper shape: all systems dip at the
// shift; HeMem and MM recover (MM's cache-line migrations recover smoothest);
// HeMem-PT-Async never tracks the hot set and stays low.
//
// Timescale note: at 1/256 scale migration converges ~256x faster, so the
// shift happens at 300 ms of simulated time rather than 150 s.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  constexpr SimTime kShiftAt = 300 * kMillisecond;
  constexpr SimTime kEnd = 600 * kMillisecond;
  constexpr SimTime kBucket = 20 * kMillisecond;

  PrintTitle("Figure 9", "Instantaneous GUPS across a hot-set shift",
             "shift of 4 GB (paper-equivalent) at t=300 ms; 20 ms buckets");

  const std::vector<std::string> systems = {"HeMem", "MM", "HeMem-PT-Async"};
  std::vector<std::vector<double>> series;
  for (const auto& system : systems) {
    GupsConfig config = StandardHotGups();
    config.shift_at = kShiftAt;
    config.shift_bytes = PaperGiB(4);
    config.series_bucket = kBucket;
    const GupsRunOutput out =
        RunGupsSystem(system, config, GupsMachine(), std::nullopt,
                      /*warmup=*/100 * kMillisecond, /*window=*/kEnd - 100 * kMillisecond,
                      sweep.host_workers, sweep.policy, &sweep, "shift");
    series.push_back(out.series);
  }

  std::vector<std::string> cols = {"t_ms"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);
  size_t buckets = 0;
  for (const auto& s : series) {
    buckets = std::max(buckets, s.size());
  }
  for (size_t b = 0; b < buckets; ++b) {
    PrintCell(Fmt("%.0f", static_cast<double>(b) * kBucket / 1e6));
    for (const auto& s : series) {
      // Updates per bucket -> GUPS.
      const double gups = b < s.size() ? s[b] / static_cast<double>(kBucket) : 0.0;
      PrintCell(gups);
    }
    EndRow();
  }
  return 0;
}
