#include "sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace hemem::bench {

SweepOptions ParseSweepArgs(int argc, char** argv) {
  SweepOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--policy=", 9) == 0) {
      opts.policy = policy::ParsePolicyFlag(arg + 9);
    } else if (std::strncmp(arg, "--policy-spec=", 14) == 0) {
      opts.policy.spec = arg + 14;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(arg + 7);
      if (opts.jobs < 1) {
        opts.jobs = 1;
      }
    } else if (std::strncmp(arg, "--host-workers=", 15) == 0) {
      opts.host_workers = std::atoi(arg + 15);
      if (opts.host_workers < 1) {
        opts.host_workers = 1;
      }
    } else if (std::strncmp(arg, "--migration=", 12) == 0) {
      opts.migration = arg + 12;
      if (opts.migration != "exclusive" && opts.migration != "nomad") {
        std::fprintf(stderr, "--migration: unknown mode '%s' (exclusive|nomad)\n",
                     opts.migration.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      opts.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      opts.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--sample-ms=", 12) == 0) {
      opts.sample_ms = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--x-list=", 9) == 0) {
      const char* p = arg + 9;
      while (*p != '\0') {
        char* end = nullptr;
        const double v = std::strtod(p, &end);
        if (end == p) {
          break;
        }
        opts.x_list.push_back(v);
        p = *end == ',' ? end + 1 : end;
      }
    }
  }
  // Fail fast on a bad policy flag: one dry-run construction validates the
  // name and spec before any cell spends simulation time on them.
  std::string error;
  if (policy::MakePolicy(opts.policy, policy::PolicyConfig{}, &error) == nullptr) {
    std::fprintf(stderr, "--policy: %s\n", error.c_str());
    std::string names;
    for (const std::string& name : policy::RegisteredPolicyNames()) {
      names += (names.empty() ? "" : " ") + name;
    }
    std::fprintf(stderr, "registered policies: %s\n", names.c_str());
    std::exit(2);
  }
  return opts;
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t workers = std::min(static_cast<size_t>(jobs < 1 ? 1 : jobs), n);
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    pool.emplace_back(drain);
  }
  drain();  // the calling thread is worker 0
  for (std::thread& t : pool) {
    t.join();
  }
}

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

unsigned HostCores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace hemem::bench
