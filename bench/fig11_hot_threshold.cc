// Figure 11: Hot-memory read-threshold sensitivity (512 GB WS / 16 GB hot,
// sampling period fixed at 5k; write threshold = half the read threshold).
// Paper shape: very low thresholds overestimate the hot set and hurt;
// 6-20 accesses work well; higher thresholds underestimate (hot pages take
// too long to qualify) and GUPS declines.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Figure 11", "Hot read-threshold sensitivity (GUPS)",
             "write threshold = read/2; PEBS period 5k");
  PrintCols({"threshold", "gups", "promoted_pages"});

  for (const uint32_t threshold : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 20u, 32u, 64u}) {
    HememParams params;
    params.hot_read_threshold = threshold;
    params.hot_write_threshold = std::max(1u, threshold / 2);
    // Cooling stays at the paper's fixed 18: thresholds above it can never
    // be reached (counts are halved first), the paper's right-hand cliff.
    const GupsRunOutput out = RunGupsSystem(
        "HeMem", StandardHotGups(), GupsMachine(), params, kGupsWarmup,
        kGupsWindow, sweep.host_workers, sweep.policy, &sweep,
        Fmt("thr%.0f", static_cast<double>(threshold)));
    PrintCell(Fmt("%.0f", static_cast<double>(threshold)));
    PrintCell(out.result.gups);
    PrintCell(Fmt("%.0f", static_cast<double>(out.pages_promoted)));
    EndRow();
  }
  return 0;
}
