// Hot-path microbenchmark: raw TieredMemoryManager::Access throughput.
//
// Unlike the figure benches (which report *simulated* application metrics),
// this bench measures the simulator's own wall-clock cost per simulated
// access — the dominant cost of every figure reproduction. One single-thread
// workload (uniform loads/stores over a two-tier working set, fixed seed) is
// driven through each manager; we report wall-clock accesses/second plus a
// determinism fingerprint (final virtual time and ManagerStats) so hot-path
// optimizations can prove themselves behavior-preserving.
//
// Output: a human-readable table on stdout and BENCH_hotpath.json (path
// overridable with --out=...). The baseline column is the pre-refactor
// (PR 1 seed) throughput recorded on the reference container; speedup is
// measured/baseline.

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "sim/script_thread.h"

namespace hemem::bench {
namespace {

constexpr uint64_t kWorkingSet = MiB(128);
constexpr uint64_t kAccessBytes = 64;
constexpr uint64_t kPrefillTouches = kWorkingSet / MiB(1);
constexpr SimTime kComputePerOp = 15;

// The machine mirrors tests/test_util.h's TinyMachineConfig: 64 MiB DRAM +
// 256 MiB NVM at 1 MiB pages, so the working set spans both tiers and HeMem's
// policy machinery is live during measurement.
MachineConfig HotpathMachine() {
  MachineConfig config;
  config.dram_bytes = MiB(64);
  config.nvm_bytes = MiB(256);
  config.page_bytes = MiB(1);
  config.label_scale = 3072.0;
  config.pebs.SetAllPeriods(500);
  return config;
}

// Pre-refactor single-thread throughput (accesses/s) captured on the
// reference container at the PR 1 seed, used to report the speedup of the
// shared-skeleton hot path. 0 = no baseline recorded for that system.
struct Baseline {
  const char* system;
  double accesses_per_s;
};
constexpr Baseline kPreRefactorBaseline[] = {
    {"DRAM", 31.2e6},  {"NVM", 34.7e6},        {"MM", 1.84e6},  {"Nimble", 18.3e6},
    {"X-Mem", 35.0e6}, {"Thermostat", 26.1e6}, {"HeMem", 16.1e6},
};

double BaselineFor(const std::string& system) {
  for (const Baseline& b : kPreRefactorBaseline) {
    if (system == b.system) {
      return b.accesses_per_s;
    }
  }
  return 0.0;
}

struct CaseResult {
  std::string system;
  double accesses_per_s = 0.0;
  uint64_t measured_ops = 0;
  SimTime sim_end_ns = 0;
  ManagerStats stats;
};

CaseResult RunCase(const std::string& system, uint64_t ops) {
  Machine machine(HotpathMachine());
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "hotpath"});

  Rng access_rng(0x601dca7ull);
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0;
  Clock::time_point t1;
  uint64_t op = 0;
  const uint64_t prefill = kPrefillTouches;
  ScriptThread thread([&](ScriptThread& self) mutable {
    if (op < prefill) {
      // Touch every page once so demand faults stay out of the timed phase.
      manager->Access(self, va + op * MiB(1), kAccessBytes, AccessKind::kStore);
      if (++op == prefill) {
        t0 = Clock::now();
      }
      return true;
    }
    const uint64_t slot = access_rng.NextBounded(kWorkingSet / kAccessBytes);
    const AccessKind kind = (op & 3) == 0 ? AccessKind::kStore : AccessKind::kLoad;
    manager->Access(self, va + slot * kAccessBytes, kAccessBytes, kind);
    self.Advance(kComputePerOp);
    return ++op < prefill + ops;
  });
  machine.engine().AddThread(&thread);
  const SimTime end = machine.engine().Run();
  t1 = Clock::now();

  CaseResult result;
  result.system = system;
  result.measured_ops = ops;
  result.sim_end_ns = end;
  result.stats = manager->stats();
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  result.accesses_per_s = static_cast<double>(ops) / (wall_ns * 1e-9);
  return result;
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "hotpath_bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"hotpath\",\n  \"systems\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    const double baseline = BaselineFor(r.system);
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"accesses_per_s\": %.0f, "
                 "\"ns_per_access\": %.2f, \"baseline_accesses_per_s\": %.0f, "
                 "\"speedup\": %.3f, \"sim_end_ns\": %lld, \"measured_ops\": %llu, "
                 "\"stats\": {\"missing_faults\": %llu, \"wp_faults\": %llu, "
                 "\"wp_wait_ns\": %lld, \"pages_promoted\": %llu, "
                 "\"pages_demoted\": %llu, \"bytes_migrated\": %llu}}%s\n",
                 r.system.c_str(), r.accesses_per_s, 1e9 / r.accesses_per_s, baseline,
                 baseline > 0.0 ? r.accesses_per_s / baseline : 0.0,
                 static_cast<long long>(r.sim_end_ns),
                 static_cast<unsigned long long>(r.measured_ops),
                 static_cast<unsigned long long>(r.stats.missing_faults),
                 static_cast<unsigned long long>(r.stats.wp_faults),
                 static_cast<long long>(r.stats.wp_wait_ns),
                 static_cast<unsigned long long>(r.stats.pages_promoted),
                 static_cast<unsigned long long>(r.stats.pages_demoted),
                 static_cast<unsigned long long>(r.stats.bytes_migrated),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace hemem::bench

int main(int argc, char** argv) {
  using namespace hemem;
  using namespace hemem::bench;

  uint64_t ops = 2'000'000;
  std::string out = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    }
  }

  PrintTitle("hotpath", "raw Access() throughput per manager (wall clock)",
             "single thread; uniform 64 B loads/stores over 128 MiB spanning both tiers");
  PrintCols({"system", "Macc/s", "ns/access", "speedup", "sim_end_ms", "faults"});

  const std::vector<std::string> systems = {"DRAM",   "NVM",        "MM",    "Nimble",
                                            "X-Mem",  "Thermostat", "HeMem"};
  std::vector<CaseResult> results;
  for (const std::string& system : systems) {
    CaseResult r = RunCase(system, ops);
    const double baseline = BaselineFor(system);
    PrintCell(r.system);
    PrintCell(Fmt("%.2f", r.accesses_per_s / 1e6));
    PrintCell(Fmt("%.1f", 1e9 / r.accesses_per_s));
    PrintCell(baseline > 0.0 ? Fmt("%.3f", r.accesses_per_s / baseline) : "n/a");
    PrintCell(Fmt("%.2f", static_cast<double>(r.sim_end_ns) / 1e6));
    PrintCell(Fmt("%.0f", static_cast<double>(r.stats.missing_faults)));
    EndRow();
    results.push_back(std::move(r));
  }
  WriteJson(out, results);
  return 0;
}
