// Hot-path microbenchmark: raw access-execution throughput of the simulator.
//
// Unlike the figure benches (which report *simulated* application metrics),
// this bench measures the simulator's own wall-clock cost per simulated
// access — the dominant cost of every figure reproduction. One single-thread
// workload (uniform loads/stores over a two-tier working set, fixed seed) is
// driven through each manager via the batched quantum entry point
// (TieredMemoryManager::RunAccessQuantum) twice: once with engine batching
// on (the default: up to K ops per slice inside a proven lookahead window)
// and once forced off (the historical one-op-per-slice shape). Both modes
// must produce bit-identical fingerprints (final virtual time + sim time at
// the measurement boundary + ManagerStats) — the bench aborts otherwise —
// so the batched speedup column is guaranteed behavior-preserving.
//
// Reported per system:
//   batched / unbatched  host accesses/second (wall clock)
//   batch_x              batched / unbatched (the engine fast-path win)
//   seed_x               batched vs the PR 1 pre-refactor baseline
//   modeled Macc/s       simulated accesses per simulated second (virtual
//                        time; identical in both modes by construction)
//
// A second section measures the sharded parallel engine (DESIGN.md
// "Parallel engine & epoch barriers"): a 4-thread uniform workload on the
// parallel-eligible systems — DRAM, NVM, X-Mem (statically safe), plus
// HeMem in PEBS mode for both migration modes (conditionally eligible:
// sampling runs shard-locally and merges at the barrier, DESIGN.md
// "Sampling under epochs") — at --host-workers {1, 2, 4}. Workers=1 is the
// serial engine; with symmetric thread clocks its min-time-first scheduler
// degenerates to ~one op per dispatch, so epoch execution (each worker
// running its shard's full quanta up to the shared horizon) recovers the
// batched fast path on top of any wall-clock overlap the host offers.
// Every worker count must produce bit-identical results — end time,
// per-thread clocks, device stats — or the bench aborts. Thermostat rides
// along as the expected-serial reference: its access hook mutates shared
// per-page state, so the gate must refuse every epoch (the bench aborts if
// it ever grants one) and its row shows what non-sharding systems pay.
//
// A third section times a miniature GUPS sweep (independent cells on the
// --sweep-jobs host-thread pool, see bench/sweep.h) sequentially and in
// parallel, recording host core count alongside. The timed parallel run
// always uses >= 2 jobs — comparing jobs=1 against jobs=1 just measures
// noise (a prior report of 0.987x traced to exactly that: the default jobs
// count is the host core count, which is 1 on a 1-core container). On hosts
// with >= 2 cores the bench requires speedup > 1.0 and aborts otherwise; on
// a 1-core host it reports the honest ~1x and says so.
//
// Output: a human-readable table on stdout and BENCH_hotpath.json (path
// overridable with --out=...).

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gups_bench.h"
#include "sim/script_thread.h"
#include "sweep.h"
#include "tier/quantum_thread.h"

namespace hemem::bench {
namespace {

constexpr uint64_t kWorkingSet = MiB(128);
constexpr uint64_t kAccessBytes = 64;
constexpr uint64_t kPrefillTouches = kWorkingSet / MiB(1);
constexpr SimTime kComputePerOp = 15;

// Deterministic per-op address mixer (SplitMix64 finalizer). The generator
// runs once per access in BOTH modes, so its cost is pure noise floor for
// the batched-vs-unbatched comparison — an inline mixer keeps that floor at
// a few cycles where the library Rng would be two out-of-line calls.
[[gnu::always_inline]] inline uint64_t MixOp(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform in [0, bound) without a divide: high half of the 128-bit product.
[[gnu::always_inline]] inline uint64_t MixBounded(uint64_t x, uint64_t bound) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(MixOp(x)) * bound) >> 64);
}

// The machine mirrors tests/test_util.h's TinyMachineConfig: 64 MiB DRAM +
// 256 MiB NVM at 1 MiB pages, so the working set spans both tiers and HeMem's
// policy machinery is live during measurement.
MachineConfig HotpathMachine() {
  MachineConfig config;
  config.dram_bytes = MiB(64);
  config.nvm_bytes = MiB(256);
  config.page_bytes = MiB(1);
  config.label_scale = 3072.0;
  config.pebs.SetAllPeriods(500);
  return config;
}

// Pre-refactor single-thread throughput (accesses/s) captured on the
// reference container at the PR 1 seed, used to report the cumulative
// speedup of the shared-skeleton + batched hot path. 0 = no baseline
// recorded for that system.
struct Baseline {
  const char* system;
  double accesses_per_s;
};
constexpr Baseline kPreRefactorBaseline[] = {
    {"DRAM", 31.2e6},  {"NVM", 34.7e6},        {"MM", 1.84e6},  {"Nimble", 18.3e6},
    {"X-Mem", 35.0e6}, {"Thermostat", 26.1e6}, {"HeMem", 16.1e6},
};

double BaselineFor(const std::string& system) {
  for (const Baseline& b : kPreRefactorBaseline) {
    if (system == b.system) {
      return b.accesses_per_s;
    }
  }
  return 0.0;
}

struct ModeResult {
  double accesses_per_s = 0.0;
  SimTime sim_start_ns = 0;  // virtual time when the measured phase began
  SimTime sim_end_ns = 0;
  ManagerStats stats;
};

struct CaseResult {
  std::string system;
  uint64_t measured_ops = 0;
  ModeResult batched;
  ModeResult unbatched;
};

// Both modes execute the identical operation sequence. The batched mode
// drives it through RunAccessQuantum (the engine's run-quantum fast path,
// generator inlined via template). The unbatched mode reproduces the
// pre-batching execution shape faithfully: a ScriptThread issuing exactly
// one manager->Access per slice through a std::function callback — what
// every figure bench did before run quanta existed (and still the shape of
// any workload that cannot be expressed as a generator).
ModeResult RunMode(const std::string& system, uint64_t ops, bool batched) {
  Machine machine(HotpathMachine());
  machine.engine().set_batching(batched);
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "hotpath"});

  using Clock = std::chrono::steady_clock;
  Clock::time_point t0;
  uint64_t op = 0;
  const uint64_t total = kPrefillTouches + ops;
  ModeResult result;
  SimThread* self = nullptr;  // set below; gen reads the virtual clock at t0
  auto gen = [&](TieredMemoryManager::AccessOp& next) {
    if (op == total) {
      return false;
    }
    if (op < kPrefillTouches) [[unlikely]] {
      // Touch every page once so demand faults stay out of the timed phase.
      next.va = va + op * MiB(1);
      next.size = kAccessBytes;
      next.kind = AccessKind::kStore;
      if (++op == kPrefillTouches) {
        result.sim_start_ns = self->now();
        t0 = Clock::now();
      }
      return true;
    }
    next.va = va + MixBounded(op, kWorkingSet / kAccessBytes) * kAccessBytes;
    next.size = kAccessBytes;
    next.kind = (op & 3) == 0 ? AccessKind::kStore : AccessKind::kLoad;
    ++op;
    return true;
  };

  if (batched) {
    QuantumAccessThread thread(*manager, gen, kComputePerOp);
    self = &thread;
    machine.engine().AddThread(&thread);
    result.sim_end_ns = machine.engine().Run();
  } else {
    ScriptThread thread([&](ScriptThread& script) {
      TieredMemoryManager::AccessOp next;
      if (!gen(next)) {
        return false;
      }
      manager->Access(script, next.va, next.size, next.kind);
      script.Advance(kComputePerOp);
      return true;
    });
    self = &thread;
    machine.engine().AddThread(&thread);
    result.sim_end_ns = machine.engine().Run();
  }
  const Clock::time_point t1 = Clock::now();

  result.stats = manager->stats();
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  result.accesses_per_s = static_cast<double>(ops) / (wall_ns * 1e-9);
  return result;
}

bool SameFingerprint(const ModeResult& a, const ModeResult& b) {
  return a.sim_start_ns == b.sim_start_ns && a.sim_end_ns == b.sim_end_ns &&
         a.stats.missing_faults == b.stats.missing_faults &&
         a.stats.wp_faults == b.stats.wp_faults && a.stats.wp_wait_ns == b.stats.wp_wait_ns &&
         a.stats.pages_promoted == b.stats.pages_promoted &&
         a.stats.pages_demoted == b.stats.pages_demoted &&
         a.stats.bytes_migrated == b.stats.bytes_migrated;
}

CaseResult RunCase(const std::string& system, uint64_t ops, int reps) {
  CaseResult result;
  result.system = system;
  result.measured_ops = ops;
  // Best-of-N per mode, modes interleaved: host throughput on a shared
  // container swings with neighbor load, and the max is the least
  // contaminated estimate of the simulator's actual speed.
  result.unbatched = RunMode(system, ops, /*batched=*/false);
  result.batched = RunMode(system, ops, /*batched=*/true);
  for (int r = 1; r < reps; ++r) {
    const ModeResult u = RunMode(system, ops, /*batched=*/false);
    if (u.accesses_per_s > result.unbatched.accesses_per_s) {
      result.unbatched = u;
    }
    const ModeResult b = RunMode(system, ops, /*batched=*/true);
    if (b.accesses_per_s > result.batched.accesses_per_s) {
      result.batched = b;
    }
  }
  if (!SameFingerprint(result.batched, result.unbatched)) {
    std::fprintf(stderr,
                 "hotpath_bench: FINGERPRINT MISMATCH for %s — batched execution "
                 "diverged from unbatched (end %lld vs %lld)\n",
                 system.c_str(), static_cast<long long>(result.batched.sim_end_ns),
                 static_cast<long long>(result.unbatched.sim_end_ns));
    std::exit(1);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Parallel engine section: K symmetric threads, sharded across host workers.

constexpr int kParThreads = 4;

// Parallel-section rows. `expect_epochs` encodes the engagement story both
// ways: eligible systems must grant epochs at workers >= 2 (a silent serial
// fallback would fake the speedup) and expected-serial systems must not (a
// silently sharded unsafe system would be a correctness hole).
struct ParallelSystem {
  const char* name;
  bool expect_epochs;
};
constexpr ParallelSystem kParallelSystems[] = {
    {"DRAM", true},  {"NVM", true},         {"X-Mem", true},
    {"HeMem", true}, {"HeMem-Nomad", true}, {"Thermostat", false},
};

// "HeMem-Nomad" is a bench-local alias (PEBS scan + nomad migration); the
// shared factory spells it as a migration-mode argument.
std::unique_ptr<TieredMemoryManager> MakeParallelSystem(const std::string& system,
                                                        Machine& machine) {
  if (system == "HeMem-Nomad") {
    return MakeSystem("HeMem", machine, {}, "nomad");
  }
  return MakeSystem(system, machine);
}

// Self-contained per-thread generator (no shared state, so the thread is
// parallel-pure): thread t issues ops seq*K+t of the global mixed stream,
// kind cycling per-thread so every thread carries the same load/store mix.
struct ParGen {
  uint64_t va = 0;
  uint64_t tid = 0;
  uint64_t seq = 0;
  uint64_t total = 0;
  bool operator()(TieredMemoryManager::AccessOp& next) {
    if (seq == total) {
      return false;
    }
    const uint64_t x = seq * kParThreads + tid;
    next.va = va + MixBounded(x, kWorkingSet / kAccessBytes) * kAccessBytes;
    next.size = kAccessBytes;
    next.kind = (seq & 3) == 0 ? AccessKind::kStore : AccessKind::kLoad;
    ++seq;
    return true;
  }
};

struct ParallelModeResult {
  int workers = 1;
  double accesses_per_s = 0.0;
  SimTime end_ns = 0;
  std::vector<SimTime> thread_end_ns;
  DeviceStats dram;
  DeviceStats nvm;
  Engine::EpochStats epochs;
  std::vector<Engine::WorkerStats> worker_stats;
};

bool SameDeviceStats(const DeviceStats& a, const DeviceStats& b) {
  return a.loads == b.loads && a.stores == b.stores &&
         a.bytes_requested_read == b.bytes_requested_read &&
         a.bytes_requested_written == b.bytes_requested_written &&
         a.media_bytes_read == b.media_bytes_read &&
         a.media_bytes_written == b.media_bytes_written &&
         a.sequential_hits == b.sequential_hits &&
         a.queue_delay_total_ns == b.queue_delay_total_ns &&
         a.queue_delay_max_ns == b.queue_delay_max_ns;
}

bool SameParallelFingerprint(const ParallelModeResult& a, const ParallelModeResult& b) {
  return a.end_ns == b.end_ns && a.thread_end_ns == b.thread_end_ns &&
         SameDeviceStats(a.dram, b.dram) && SameDeviceStats(a.nvm, b.nvm);
}

ParallelModeResult RunParallelMode(const std::string& system, uint64_t ops_per_thread,
                                   int workers) {
  Machine machine(HotpathMachine());
  machine.EnableHostWorkers(workers);
  std::unique_ptr<TieredMemoryManager> manager = MakeParallelSystem(system, machine);
  manager->Start();
  const uint64_t va = manager->Mmap(kWorkingSet, {.label = "hotpath-par"});

  std::vector<std::unique_ptr<QuantumAccessThread<ParGen>>> threads;
  for (int t = 0; t < kParThreads; ++t) {
    ParGen gen{va, static_cast<uint64_t>(t), 0, ops_per_thread};
    threads.push_back(std::make_unique<QuantumAccessThread<ParGen>>(
        *manager, gen, kComputePerOp, /*charge_compute=*/false,
        "par#" + std::to_string(t)));
    threads.back()->set_parallel_pure(true);
    machine.engine().AddThread(threads.back().get());
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  ParallelModeResult result;
  result.workers = workers;
  result.end_ns = machine.engine().Run();
  const Clock::time_point t1 = Clock::now();

  for (const auto& thread : threads) {
    result.thread_end_ns.push_back(thread->now());
  }
  result.dram = machine.dram().stats();
  result.nvm = machine.nvm().stats();
  result.epochs = machine.engine().epoch_stats();
  result.worker_stats = machine.engine().worker_stats();
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  result.accesses_per_s =
      static_cast<double>(ops_per_thread) * kParThreads / (wall_ns * 1e-9);
  return result;
}

struct ParallelCaseResult {
  std::string system;
  uint64_t ops_per_thread = 0;
  std::vector<ParallelModeResult> modes;  // one per worker count, ascending
};

ParallelCaseResult RunParallelCase(const std::string& system, uint64_t ops_per_thread,
                                   const std::vector<int>& worker_counts, int reps,
                                   bool expect_epochs) {
  ParallelCaseResult result;
  result.system = system;
  result.ops_per_thread = ops_per_thread;
  for (const int workers : worker_counts) {
    ParallelModeResult best = RunParallelMode(system, ops_per_thread, workers);
    for (int r = 1; r < reps; ++r) {
      ParallelModeResult next = RunParallelMode(system, ops_per_thread, workers);
      if (!SameParallelFingerprint(next, best)) {
        std::fprintf(stderr,
                     "hotpath_bench: PARALLEL NONDETERMINISM for %s at %d workers "
                     "(end %lld vs %lld)\n",
                     system.c_str(), workers, static_cast<long long>(next.end_ns),
                     static_cast<long long>(best.end_ns));
        std::exit(1);
      }
      if (next.accesses_per_s > best.accesses_per_s) {
        best = std::move(next);
      }
    }
    if (!result.modes.empty() && !SameParallelFingerprint(best, result.modes.front())) {
      const ParallelModeResult& ref = result.modes.front();
      std::fprintf(stderr,
                   "hotpath_bench: PARALLEL FINGERPRINT MISMATCH for %s — %d workers "
                   "diverged from %d workers (end %lld vs %lld)\n",
                   system.c_str(), workers, ref.workers,
                   static_cast<long long>(best.end_ns),
                   static_cast<long long>(ref.end_ns));
      for (size_t t = 0; t < best.thread_end_ns.size(); ++t) {
        std::fprintf(stderr, "  thread %zu: %lld vs %lld\n", t,
                     static_cast<long long>(best.thread_end_ns[t]),
                     static_cast<long long>(ref.thread_end_ns[t]));
      }
      auto dump = [](const char* name, const DeviceStats& a, const DeviceStats& b) {
        std::fprintf(stderr,
                     "  %s: loads %llu/%llu stores %llu/%llu seq %llu/%llu "
                     "qd_total %llu/%llu qd_max %llu/%llu media_w %llu/%llu\n",
                     name, (unsigned long long)a.loads, (unsigned long long)b.loads,
                     (unsigned long long)a.stores, (unsigned long long)b.stores,
                     (unsigned long long)a.sequential_hits,
                     (unsigned long long)b.sequential_hits,
                     (unsigned long long)a.queue_delay_total_ns,
                     (unsigned long long)b.queue_delay_total_ns,
                     (unsigned long long)a.queue_delay_max_ns,
                     (unsigned long long)b.queue_delay_max_ns,
                     (unsigned long long)a.media_bytes_written,
                     (unsigned long long)b.media_bytes_written);
      };
      dump("dram", best.dram, ref.dram);
      dump("nvm", best.nvm, ref.nvm);
      std::exit(1);
    }
    // Sharded execution must actually engage for eligible systems: a silent
    // fall-back to serial would keep fingerprints trivially identical and
    // fake the speedup story. Expected-serial systems must stay serial.
    if (expect_epochs && workers >= 2 && best.epochs.epochs == 0) {
      std::fprintf(stderr,
                   "hotpath_bench: NO EPOCHS for %s at %d workers (gate rejected %llu "
                   "times) — parallel section is not exercising sharded execution\n",
                   system.c_str(), workers,
                   static_cast<unsigned long long>(best.epochs.rejected));
      std::exit(1);
    }
    if (!expect_epochs && best.epochs.epochs != 0) {
      std::fprintf(stderr,
                   "hotpath_bench: UNEXPECTED EPOCHS for %s at %d workers (%llu granted) "
                   "— a system with shared access-path state was sharded\n",
                   system.c_str(), workers,
                   static_cast<unsigned long long>(best.epochs.epochs));
      std::exit(1);
    }
    result.modes.push_back(std::move(best));
  }
  return result;
}

// Miniature Figure 5-style sweep for timing the --jobs driver: independent
// (working-set x system) GUPS cells with shortened windows.
struct SweepTiming {
  int jobs = 1;      // requested --sweep-jobs
  int par_jobs = 1;  // jobs actually used for the timed parallel run (>= 2)
  unsigned host_cores = 1;
  size_t cells = 0;
  double seq_seconds = 0.0;
  double par_seconds = 0.0;
};

SweepTiming TimeSweep(int jobs) {
  const std::vector<double> ws_points = {8.0, 32.0};
  const std::vector<std::string> systems = {"DRAM", "MM", "HeMem"};
  SweepTiming timing;
  timing.jobs = jobs;
  // The sequential leg is always jobs=1, so the parallel leg must not be:
  // --sweep-jobs defaults to the host core count, and on a 1-core host that
  // made this a jobs=1-vs-jobs=1 comparison whose "speedup" was pure noise.
  timing.par_jobs = jobs < 2 ? 2 : jobs;
  timing.host_cores = HostCores();
  timing.cells = ws_points.size() * systems.size();
  auto run_all = [&](int j) {
    std::vector<double> sink(timing.cells, 0.0);
    ParallelFor(timing.cells, j, [&](size_t cell) {
      GupsConfig config;
      config.threads = 16;
      config.working_set = PaperGiB(ws_points[cell / systems.size()]);
      config.hot_set = 0;
      const GupsRunOutput out = RunGupsSystem(
          systems[cell % systems.size()], config, GupsMachine(), std::nullopt,
          /*warmup=*/50 * kMillisecond, /*window=*/20 * kMillisecond);
      sink[cell] = out.result.gups;
    });
    return sink;
  };
  double t = WallSeconds();
  const std::vector<double> seq = run_all(1);
  timing.seq_seconds = WallSeconds() - t;
  t = WallSeconds();
  const std::vector<double> par = run_all(timing.par_jobs);
  timing.par_seconds = WallSeconds() - t;
  for (size_t i = 0; i < timing.cells; ++i) {
    if (seq[i] != par[i]) {
      std::fprintf(stderr, "hotpath_bench: SWEEP MISMATCH at cell %zu (%f vs %f)\n", i,
                   seq[i], par[i]);
      std::exit(1);
    }
  }
  // With real cores available, cell-level parallelism must pay off; anything
  // else is a driver regression. A 1-core host can only interleave, so there
  // the honest number (~1x) is reported without judgement.
  if (timing.host_cores >= 2 && timing.par_seconds >= timing.seq_seconds) {
    std::fprintf(stderr,
                 "hotpath_bench: SWEEP REGRESSION — jobs=%d took %.3fs vs %.3fs "
                 "sequential on %u host cores\n",
                 timing.par_jobs, timing.par_seconds, timing.seq_seconds,
                 timing.host_cores);
    std::exit(1);
  }
  return timing;
}

void WriteParallelJson(std::FILE* f, const std::vector<ParallelCaseResult>& parallel) {
  std::fprintf(f, "  \"parallel\": {\n    \"threads\": %d,\n    \"systems\": [\n",
               kParThreads);
  for (size_t i = 0; i < parallel.size(); ++i) {
    const ParallelCaseResult& r = parallel[i];
    const double base = r.modes.front().accesses_per_s;
    const double peak = r.modes.back().accesses_per_s;
    std::fprintf(f,
                 "      {\"system\": \"%s\", \"ops_per_thread\": %llu, "
                 "\"speedup_vs_serial\": %.3f, \"identical\": true, \"modes\": [\n",
                 r.system.c_str(), static_cast<unsigned long long>(r.ops_per_thread),
                 base > 0.0 ? peak / base : 0.0);
    for (size_t m = 0; m < r.modes.size(); ++m) {
      const ParallelModeResult& mode = r.modes[m];
      // Fraction of gate decisions that granted an epoch: how often the
      // manager's eligibility held at this worker count (0 when the gate was
      // never consulted, i.e. the serial engine).
      const uint64_t decisions = mode.epochs.epochs + mode.epochs.rejected;
      const double grant_rate =
          decisions == 0 ? 0.0
                         : static_cast<double>(mode.epochs.epochs) /
                               static_cast<double>(decisions);
      std::fprintf(f,
                   "        {\"workers\": %d, \"accesses_per_s\": %.0f, "
                   "\"end_ns\": %lld, \"epochs\": %llu, \"epochs_rejected\": %llu, "
                   "\"epoch_grant_rate\": %.4f, "
                   "\"barrier_ns\": %llu, \"epoch_virtual_ns\": %llu, "
                   "\"worker_busy_ns\": [",
                   mode.workers, mode.accesses_per_s,
                   static_cast<long long>(mode.end_ns),
                   static_cast<unsigned long long>(mode.epochs.epochs),
                   static_cast<unsigned long long>(mode.epochs.rejected),
                   grant_rate,
                   static_cast<unsigned long long>(mode.epochs.barrier_ns),
                   static_cast<unsigned long long>(mode.epochs.virtual_ns));
      for (size_t w = 0; w < mode.worker_stats.size(); ++w) {
        std::fprintf(f, "%s%llu", w > 0 ? ", " : "",
                     static_cast<unsigned long long>(mode.worker_stats[w].busy_ns));
      }
      std::fprintf(f, "], \"worker_stall_ns\": [");
      for (size_t w = 0; w < mode.worker_stats.size(); ++w) {
        std::fprintf(f, "%s%llu", w > 0 ? ", " : "",
                     static_cast<unsigned long long>(mode.worker_stats[w].stall_ns));
      }
      std::fprintf(f, "], \"worker_slices\": [");
      for (size_t w = 0; w < mode.worker_stats.size(); ++w) {
        std::fprintf(f, "%s%llu", w > 0 ? ", " : "",
                     static_cast<unsigned long long>(mode.worker_stats[w].slices));
      }
      std::fprintf(f, "]}%s\n", m + 1 < r.modes.size() ? "," : "");
    }
    std::fprintf(f, "      ]}%s\n", i + 1 < parallel.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& results,
               const std::vector<ParallelCaseResult>& parallel,
               const SweepTiming& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "hotpath_bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"hotpath\",\n  \"host_cores\": %u,\n  \"systems\": [\n",
               HostCores());
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    const double baseline = BaselineFor(r.system);
    const double modeled =
        static_cast<double>(r.measured_ops) /
        (static_cast<double>(r.batched.sim_end_ns - r.batched.sim_start_ns) * 1e-9);
    std::fprintf(
        f,
        "    {\"system\": \"%s\", \"batched_accesses_per_s\": %.0f, "
        "\"unbatched_accesses_per_s\": %.0f, \"batch_speedup\": %.3f, "
        "\"ns_per_access\": %.2f, \"baseline_accesses_per_s\": %.0f, "
        "\"speedup_vs_seed\": %.3f, \"modeled_accesses_per_s\": %.0f, "
        "\"sim_end_ns\": %lld, \"measured_ops\": %llu, "
        "\"stats\": {\"missing_faults\": %llu, \"wp_faults\": %llu, "
        "\"wp_wait_ns\": %lld, \"pages_promoted\": %llu, "
        "\"pages_demoted\": %llu, \"bytes_migrated\": %llu}}%s\n",
        r.system.c_str(), r.batched.accesses_per_s, r.unbatched.accesses_per_s,
        r.batched.accesses_per_s / r.unbatched.accesses_per_s,
        1e9 / r.batched.accesses_per_s, baseline,
        baseline > 0.0 ? r.batched.accesses_per_s / baseline : 0.0, modeled,
        static_cast<long long>(r.batched.sim_end_ns),
        static_cast<unsigned long long>(r.measured_ops),
        static_cast<unsigned long long>(r.batched.stats.missing_faults),
        static_cast<unsigned long long>(r.batched.stats.wp_faults),
        static_cast<long long>(r.batched.stats.wp_wait_ns),
        static_cast<unsigned long long>(r.batched.stats.pages_promoted),
        static_cast<unsigned long long>(r.batched.stats.pages_demoted),
        static_cast<unsigned long long>(r.batched.stats.bytes_migrated),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (!parallel.empty()) {
    WriteParallelJson(f, parallel);
  }
  std::fprintf(f,
               "  \"sweep\": {\"jobs\": %d, \"par_jobs\": %d, \"host_cores\": %u, "
               "\"cells\": %zu, "
               "\"seq_seconds\": %.3f, \"par_seconds\": %.3f, \"speedup\": %.3f}\n}\n",
               sweep.jobs, sweep.par_jobs, sweep.host_cores, sweep.cells,
               sweep.seq_seconds, sweep.par_seconds,
               sweep.par_seconds > 0.0 ? sweep.seq_seconds / sweep.par_seconds : 0.0);
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace hemem::bench

int main(int argc, char** argv) {
  using namespace hemem;
  using namespace hemem::bench;

  uint64_t ops = 2'000'000;
  std::string out = "BENCH_hotpath.json";
  int sweep_jobs = static_cast<int>(HostCores());
  bool skip_sweep = false;
  int host_workers = 4;  // max worker count for the parallel engine section
  int reps = 3;
  std::vector<std::string> systems = {"DRAM",  "NVM",        "MM",    "Nimble",
                                      "X-Mem", "Thermostat", "HeMem"};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--sweep-jobs=", 13) == 0) {
      sweep_jobs = std::atoi(argv[i] + 13);
      if (sweep_jobs < 1) {
        sweep_jobs = 1;
      }
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      skip_sweep = true;
    } else if (std::strncmp(argv[i], "--host-workers=", 15) == 0) {
      host_workers = std::atoi(argv[i] + 15);
      if (host_workers < 1) {
        host_workers = 1;
      }
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
      if (reps < 1) {
        reps = 1;
      }
    } else if (std::strncmp(argv[i], "--systems=", 10) == 0) {
      systems.clear();
      const char* p = argv[i] + 10;
      while (*p != '\0') {
        const char* comma = std::strchr(p, ',');
        systems.emplace_back(p, comma == nullptr ? std::strlen(p) : comma - p);
        p = comma == nullptr ? p + systems.back().size() : comma + 1;
      }
    }
  }

  PrintTitle("hotpath", "raw access-execution throughput per manager (wall clock)",
             "single thread; uniform 64 B loads/stores over 128 MiB spanning both tiers; "
             "batched (engine run quanta) vs unbatched (one op per slice)");
  PrintCols({"system", "batched", "unbatched", "batch_x", "seed_x", "modeled", "sim_end_ms"});

  std::vector<CaseResult> results;
  for (const std::string& system : systems) {
    CaseResult r = RunCase(system, ops, reps);
    const double baseline = BaselineFor(system);
    const double modeled =
        static_cast<double>(ops) /
        (static_cast<double>(r.batched.sim_end_ns - r.batched.sim_start_ns) * 1e-9);
    PrintCell(r.system);
    PrintCell(Fmt("%.2fM/s", r.batched.accesses_per_s / 1e6));
    PrintCell(Fmt("%.2fM/s", r.unbatched.accesses_per_s / 1e6));
    PrintCell(Fmt("%.2fx", r.batched.accesses_per_s / r.unbatched.accesses_per_s));
    PrintCell(baseline > 0.0 ? Fmt("%.2fx", r.batched.accesses_per_s / baseline) : "n/a");
    PrintCell(Fmt("%.1fM/s", modeled / 1e6));
    PrintCell(Fmt("%.2f", static_cast<double>(r.batched.sim_end_ns) / 1e6));
    EndRow();
    results.push_back(std::move(r));
  }
  std::printf("# fingerprints: batched == unbatched for all %zu systems\n", results.size());

  // Parallel engine section: the statically safe systems (DRAM, NVM, X-Mem),
  // the conditionally eligible PEBS HeMem modes (shard-local sampling), and
  // Thermostat as the expected-serial reference; host_workers=1 is the
  // serial engine and the reference fingerprint.
  std::vector<ParallelCaseResult> parallel;
  if (host_workers >= 2) {
    std::vector<int> worker_counts;
    for (const int w : {1, 2, 4}) {
      if (w <= host_workers) {
        worker_counts.push_back(w);
      }
    }
    if (worker_counts.back() != host_workers) {
      worker_counts.push_back(host_workers);
    }
    const uint64_t ops_per_thread = ops / kParThreads;
    std::printf("\n");
    PrintTitle("hotpath/parallel",
               "sharded engine throughput, 4 symmetric threads (wall clock)",
               "uniform 64 B loads/stores; --host-workers shards threads across epoch "
               "workers; results bit-identical at every worker count");
    std::vector<std::string> par_cols = {"system"};
    for (const int w : worker_counts) {
      par_cols.push_back("w=" + std::to_string(w));
    }
    par_cols.push_back("par_x");
    par_cols.push_back("epochs");
    par_cols.push_back("grant");
    PrintCols(par_cols);
    for (const ParallelSystem& ps : kParallelSystems) {
      ParallelCaseResult r = RunParallelCase(ps.name, ops_per_thread, worker_counts,
                                             reps, ps.expect_epochs);
      PrintCell(r.system);
      for (const ParallelModeResult& mode : r.modes) {
        PrintCell(Fmt("%.2fM/s", mode.accesses_per_s / 1e6));
      }
      PrintCell(Fmt("%.2fx",
                    r.modes.back().accesses_per_s / r.modes.front().accesses_per_s));
      const Engine::EpochStats& es = r.modes.back().epochs;
      const uint64_t decisions = es.epochs + es.rejected;
      PrintCell(Fmt("%.0f", static_cast<double>(es.epochs)));
      PrintCell(decisions == 0
                    ? std::string("n/a")
                    : Fmt("%.0f%%", 100.0 * static_cast<double>(es.epochs) /
                                        static_cast<double>(decisions)));
      EndRow();
      parallel.push_back(std::move(r));
    }
    std::printf("# fingerprints: identical across worker counts for all %zu systems\n",
                parallel.size());
  }

  SweepTiming sweep;
  if (!skip_sweep) {
    sweep = TimeSweep(sweep_jobs);
    std::printf("# sweep: seq %.2fs, --jobs=%d %.2fs (%.2fx, %u host cores%s)\n",
                sweep.seq_seconds, sweep.par_jobs, sweep.par_seconds,
                sweep.par_seconds > 0.0 ? sweep.seq_seconds / sweep.par_seconds : 0.0,
                sweep.host_cores,
                sweep.host_cores < 2 ? "; 1-core host, ~1x expected" : "");
  }
  WriteJson(out, results, parallel, sweep);
  return 0;
}
