// Figure 8: HeMem overhead breakdown (512 GB working set, 16 GB hot set).
// Configurations, as in the paper:
//   Opt            - hot set manually placed in DRAM; no scanning/migration.
//   PEBS           - sampling thread on, migration off (overhead of PEBS).
//   PT-Scan        - page-table scanning instead of PEBS, migration off
//                    (TLB-shootdown overhead; paper: -18% vs PEBS).
//   PEBS+Migrate   - full HeMem (paper: within 5.9% of Opt).
//   PT+M.Sync      - scan and migrate sequentially on one thread (paper: 18%
//                    of Opt; scans starve behind migrations).
//   PT+M.Async     - separate scan thread (paper: ~43% of Opt; still
//                    overestimates the hot set).

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

struct Config {
  const char* name;
  bool manual_placement;
  HememParams::ScanMode scan;
  bool migrate;
};

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Figure 8", "HeMem overhead breakdown (GUPS)",
             "512 GB working set / 16 GB hot set at 1/256 scale, 16 threads");
  PrintCols({"config", "gups", "vs_opt"});

  const Config configs[] = {
      {"Opt", true, HememParams::ScanMode::kNone, false},
      {"PEBS", true, HememParams::ScanMode::kPebs, false},
      {"PT-Scan", true, HememParams::ScanMode::kPtAsync, false},
      {"PEBS+Migrate", false, HememParams::ScanMode::kPebs, true},
      {"PT+M.Sync", false, HememParams::ScanMode::kPtSync, true},
      {"PT+M.Async", false, HememParams::ScanMode::kPtAsync, true},
  };

  double opt_gups = 0.0;
  for (const Config& c : configs) {
    GupsConfig gups = StandardHotGups();
    if (c.manual_placement) {
      // The hot set is pinned-by-hint to DRAM; cold data keeps the default
      // DRAM-first fill (as the paper's Opt does) so spare DRAM is not wasted.
      gups.split_hot_region = true;
      gups.hot_region_hint = Tier::kDram;
    }
    HememParams params;
    params.scan_mode = c.scan;
    params.enable_policy = c.migrate;
    const GupsRunOutput out =
        RunGupsSystem("HeMem", gups, GupsMachine(), params, kGupsWarmup,
                      kGupsWindow, sweep.host_workers, sweep.policy, &sweep, c.name);
    if (opt_gups == 0.0) {
      opt_gups = out.result.gups;
    }
    PrintCell(std::string(c.name));
    PrintCell(out.result.gups);
    PrintCell(out.result.gups / opt_gups);
    EndRow();
  }
  return 0;
}
