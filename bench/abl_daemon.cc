// Ablation: global coordination via the HeMem daemon (paper Section 3.4).
// Two HeMem "processes" share one socket: a hot-set GUPS instance and a
// uniform-random GUPS instance. Without coordination, first-touch splits
// DRAM arbitrarily; with the daemon, DRAM quotas follow measured hot-set
// demand, so the skewed instance keeps its hot set resident while the
// uniform instance (which cannot benefit from DRAM beyond its floor) cedes
// capacity.

#include "gups_bench.h"
#include "sweep.h"

#include "core/daemon.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

const SweepOptions* g_sweep = nullptr;

struct PairOut {
  double skewed_gups = 0.0;
  double uniform_gups = 0.0;
  uint64_t skewed_quota = 0;
  uint64_t uniform_quota = 0;
};

PairOut RunPair(bool with_daemon) {
  Machine machine(GupsMachine());
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  Hemem skewed(machine);
  Hemem uniform(machine);
  skewed.Start();
  uniform.Start();

  HememDaemon daemon(machine);
  if (with_daemon) {
    daemon.Attach(&skewed);
    daemon.Attach(&uniform);
    daemon.Start();
  }

  GupsConfig sconfig = StandardHotGups(8);
  sconfig.working_set = PaperGiB(256);
  sconfig.hot_set = PaperGiB(64);
  sconfig.updates_per_thread = ~0ull >> 2;
  sconfig.measure_after = 500 * kMillisecond;
  sconfig.seed = 11;
  GupsBenchmark skewed_gups(skewed, sconfig);
  skewed_gups.Prepare();

  GupsConfig uconfig;
  uconfig.threads = 8;
  uconfig.working_set = PaperGiB(256);
  uconfig.hot_set = 0;  // uniform
  uconfig.updates_per_thread = ~0ull >> 2;
  uconfig.measure_after = 500 * kMillisecond;
  uconfig.seed = 12;
  GupsBenchmark uniform_gups(uniform, uconfig);
  uniform_gups.Prepare();

  machine.engine().Run(560 * kMillisecond);

  PairOut out;
  out.skewed_gups = skewed_gups.Run().gups;   // engine drained; collects
  out.uniform_gups = uniform_gups.Run().gups;
  out.skewed_quota = skewed.dram_quota();
  out.uniform_quota = uniform.dram_quota();
  if (cell_obs.has_value()) {
    cell_obs->Finish(with_daemon ? "daemon-on" : "daemon-off",
                     {{"workload", "gups-pair"}});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  g_sweep = &sweep;
  PrintTitle("Ablation: HeMem daemon", "two instances sharing a socket (GUPS)",
             "skewed: 256 GB WS / 64 GB hot; uniform: 256 GB WS; quotas in paper GB");
  PrintCols({"config", "skewed", "uniform", "quota_skewed", "quota_uniform"});

  for (const bool with_daemon : {false, true}) {
    const PairOut out = RunPair(with_daemon);
    PrintCell(std::string(with_daemon ? "daemon" : "uncoordinated"));
    PrintCell(out.skewed_gups);
    PrintCell(out.uniform_gups);
    const double to_gb = kGupsScale / (1024.0 * 1024.0 * 1024.0);
    PrintCell(Fmt("%.0f", static_cast<double>(out.skewed_quota) * to_gb));
    PrintCell(Fmt("%.0f", static_cast<double>(out.uniform_quota) * to_gb));
    EndRow();
  }
  return 0;
}
