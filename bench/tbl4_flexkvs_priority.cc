// Table 4: FlexKVS latency under performance isolation.
// Two FlexKVS instances share the machine: a prioritized instance with a
// 16 GB working set and a regular instance with a 500 GB uniformly-accessed
// working set. Under HeMem the priority instance pins its key-value pairs to
// DRAM. Paper shape: HeMem improves the priority instance's median latency
// by ~47% and 99p by ~16% over MM, with no tangible harm to the regular
// instance (MM cannot prioritize).

#include <optional>

#include "apps/flexkvs.h"
#include "bench_common.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

constexpr double kKvsScale = 256.0;

const SweepOptions* g_sweep = nullptr;

struct PairResult {
  Histogram priority;
  Histogram regular;
};

PairResult RunPair(const std::string& system) {
  Machine machine(GupsMachine());  // same 1/256-scale platform discipline
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  std::unique_ptr<TieredMemoryManager> manager = MakeSystem(system, machine);
  manager->Start();

  KvsConfig regular;
  regular.value_bytes = 4096;
  regular.server_threads = 6;
  regular.num_keys = PaperGiB(500.0, kKvsScale) / 4224;
  regular.hot_key_fraction = 0.0;  // uniform random
  regular.requests_per_thread = 25'000;
  regular.warmup_requests_per_thread = 25'000;
  regular.bulk_load = true;
  regular.net_rtt = 5 * kMicrosecond;  // keep memory effects visible at scale
  regular.label = "regular";
  regular.seed = 100;

  KvsConfig priority = regular;
  priority.server_threads = 2;
  priority.num_keys = PaperGiB(16.0, kKvsScale) / 4224;
  priority.label = "priority";
  priority.seed = 200;
  if (system == "HeMem") {
    priority.pin_tier = Tier::kDram;  // the per-application policy knob
  }

  FlexKvs regular_kvs(*manager, regular);
  FlexKvs priority_kvs(*manager, priority);
  regular_kvs.Prepare();
  priority_kvs.Prepare();
  machine.engine().Run();

  PairResult out;
  out.priority = priority_kvs.Run().latency;  // engine drained; collects
  out.regular = regular_kvs.Run().latency;
  if (cell_obs.has_value()) {
    cell_obs->Finish("kvs-priority-" + system,
                     {{"workload", "flexkvs-priority"}, {"system", system}});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  g_sweep = &sweep;
  PrintTitle("Table 4", "FlexKVS latency with priority (us)",
             "priority: 16 GB pinned to DRAM under HeMem; regular: 500 GB uniform "
             "(1/256 scale)");
  PrintCols({"system", "prio_50p", "prio_99p", "prio_99.9p", "reg_50p", "reg_99p",
             "reg_99.9p"});

  for (const std::string system : {"HeMem", "MM"}) {
    const PairResult result = RunPair(system);
    PrintCell(system);
    for (const double q : {0.5, 0.99, 0.999}) {
      PrintCell(static_cast<double>(result.priority.Percentile(q)));
    }
    for (const double q : {0.5, 0.99, 0.999}) {
      PrintCell(static_cast<double>(result.regular.Percentile(q)));
    }
    EndRow();
  }
  return 0;
}
