// Figure 1: Memory access throughput scalability.
// 256-byte accesses, sequential and random, reads and writes, DRAM vs
// Optane, sweeping the number of threads. Paper shape: DRAM scales with
// threads in all modes; Optane write bandwidth saturates at ~4 threads;
// Optane random reads keep scaling but stay well below DRAM; Optane
// sequential reads can surpass DRAM *random* throughput.

#include "bench_common.h"
#include "device_workload.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  // Raw-device bench: no Machine, so the obs outputs have nothing to write,
  // but the sweep flags must parse so drivers can pass them uniformly.
  (void)ParseSweepArgs(argc, argv);
  PrintTitle("Figure 1", "Memory access throughput scalability (GB/s)",
             "256 B accesses; columns are device/pattern/direction");
  PrintCols({"threads", "dram_seq_rd", "dram_rnd_rd", "dram_seq_wr", "dram_rnd_wr",
             "nvm_seq_rd", "nvm_rnd_rd", "nvm_seq_wr", "nvm_rnd_wr"});

  for (const int threads : {1, 2, 4, 8, 12, 16, 20, 24}) {
    PrintCell(static_cast<double>(threads));
    for (const bool is_dram : {true, false}) {
      for (const auto [kind, seq] :
           {std::pair{AccessKind::kLoad, true}, {AccessKind::kLoad, false},
            {AccessKind::kStore, true}, {AccessKind::kStore, false}}) {
        MemoryDevice dev(is_dram ? DeviceParams::Dram(GiB(192))
                                 : DeviceParams::OptaneNvm(GiB(768)));
        PrintCell(DeviceThroughputGBs(dev, threads, 256, kind, seq));
      }
    }
    EndRow();
  }
  return 0;
}
