// Figure 3: Page table scan time vs mapped capacity, for 4 KiB base pages,
// 2 MiB huge pages, and 1 GiB gigantic pages. Paper shape: scanning
// terabytes of base-page mappings takes seconds; each larger page size cuts
// the scan time by orders of magnitude.

#include "bench_common.h"
#include "sweep.h"
#include "vm/page_table.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  // Cost-model bench: no Machine, so the obs outputs have nothing to write,
  // but the sweep flags must parse so drivers can pass them uniformly.
  (void)ParseSweepArgs(argc, argv);
  PrintTitle("Figure 3", "Page table scan time (ms)",
             "4-level radix cost model; A/D-bit check of the full mapping");
  PrintCols({"capacity_GB", "base_4K", "huge_2M", "giga_1G"});

  RadixCostModel model;
  for (const uint64_t gb : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull, 2048ull, 4096ull}) {
    PrintCell(static_cast<double>(gb));
    PrintCell(static_cast<double>(model.ScanTime(GiB(gb), KiB(4))) / 1e6);
    PrintCell(static_cast<double>(model.ScanTime(GiB(gb), MiB(2))) / 1e6);
    PrintCell(static_cast<double>(model.ScanTime(GiB(gb), GiB(1))) / 1e6);
    EndRow();
  }
  return 0;
}
