// Ablation: the swap tier (paper Section 3.4 extension).
// With a block device configured, HeMem pages the coldest NVM data out to
// disk, so working sets beyond DRAM+NVM keep running and degrade gracefully
// rather than failing to map. Hot-set GUPS across working sets that cross
// total physical memory (DRAM+NVM = 960 GB paper-equivalent at 1/256 scale).

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  PrintTitle("Ablation: swap tier", "GUPS vs working set with disk swap",
             "16 GB hot set; DRAM+NVM = 960 GB paper-equivalent; swap = NVMe model");
  PrintCols({"ws_GB", "gups", "swapped_out", "swapped_in", "disk_MB_written"});

  for (const double ws_gb : {512.0, 896.0, 1024.0, 1280.0}) {
    MachineConfig mc = GupsMachine();
    mc.swap_bytes = PaperGiB(1024.0);

    Machine machine(mc);
    std::optional<CellObs> cell_obs;
    cell_obs.emplace(machine, sweep);
    HememParams params;
    params.enable_swap = true;
    params.nvm_free_watermark = GiB(32);
    Hemem manager(machine, params);
    manager.Start();

    GupsConfig config = StandardHotGups();
    config.working_set = PaperGiB(ws_gb);
    config.updates_per_thread = ~0ull >> 2;
    // Past total memory the prefill itself pages through the disk; give
    // those rows a much longer warmup.
    const SimTime warmup = ws_gb > 900 ? 2500 * kMillisecond : 500 * kMillisecond;
    config.measure_after = warmup;
    GupsBenchmark gups(manager, config);
    gups.Prepare();
    const GupsResult result = gups.Run(warmup + 100 * kMillisecond);

    PrintCell(Fmt("%.0f", ws_gb));
    PrintCell(result.gups);
    PrintCell(Fmt("%.0f", static_cast<double>(manager.hstats().pages_swapped_out)));
    PrintCell(Fmt("%.0f", static_cast<double>(manager.hstats().pages_swapped_in)));
    PrintCell(static_cast<double>(machine.swap()->stats().bytes_written) /
              (1024.0 * 1024.0));
    EndRow();
    cell_obs->Finish(Fmt("swap-ws%.0f", ws_gb), {{"workload", "gups-swap"}});
  }
  return 0;
}
