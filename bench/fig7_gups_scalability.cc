// Figure 7: GUPS thread scalability (512 GB working set, 16 GB hot set).
// Paper shape: HeMem and MM scale together at low thread counts; at >= 21
// threads HeMem's helper threads contend with GUPS for the 24-core socket
// (~10% below MM); the CPU-copy configuration (HeMem-Threads, no DMA
// engine) loses further ground.

#include "gups_bench.h"

using namespace hemem;
using namespace hemem::bench;

int main() {
  PrintTitle("Figure 7", "GUPS vs thread count (GUPS)",
             "512 GB working set / 16 GB hot set at 1/256 scale; 24-core socket");
  const std::vector<std::string> systems = {"MM", "HeMem", "HeMem-Threads"};
  std::vector<std::string> cols = {"threads"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  for (const int threads : {1, 4, 8, 12, 16, 20, 21, 22, 24}) {
    PrintCell(Fmt("%.0f", threads));
    for (const auto& system : systems) {
      const GupsConfig config = StandardHotGups(threads);
      // Few threads fault the working set in slowly; give them a longer
      // warmup so measurement starts after the prefill completes.
      const SimTime warmup = threads < 8 ? 1400 * kMillisecond : kGupsWarmup;
      const GupsRunOutput out =
          RunGupsSystem(system, config, GupsMachine(), std::nullopt, warmup);
      PrintCell(out.result.gups);
    }
    EndRow();
  }
  return 0;
}
