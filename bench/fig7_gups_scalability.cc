// Figure 7: GUPS thread scalability (512 GB working set, 16 GB hot set).
// Paper shape: HeMem and MM scale together at low thread counts; at >= 21
// threads HeMem's helper threads contend with GUPS for the 24-core socket
// (~10% below MM); the CPU-copy configuration (HeMem-Threads, no DMA
// engine) loses further ground.
//
// Independent (thread-count point x system) cells; --jobs=N parallelizes
// across host threads, --x-list=1,16 overrides the thread-count points.

#include "gups_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  std::vector<double> thread_points = {1, 4, 8, 12, 16, 20, 21, 22, 24};
  if (!sweep.x_list.empty()) {
    thread_points = sweep.x_list;
  }
  const std::vector<std::string> systems = {"MM", "HeMem", "HeMem-Threads"};

  PrintTitle("Figure 7", "GUPS vs thread count (GUPS)",
             "512 GB working set / 16 GB hot set at 1/256 scale; 24-core socket");
  std::vector<std::string> cols = {"threads"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);

  std::vector<double> gups(thread_points.size() * systems.size(), 0.0);
  ParallelFor(gups.size(), sweep.jobs, [&](size_t cell) {
    const int threads = static_cast<int>(thread_points[cell / systems.size()]);
    const std::string& system = systems[cell % systems.size()];
    const GupsConfig config = StandardHotGups(threads);
    // Few threads fault the working set in slowly; give them a longer
    // warmup so measurement starts after the prefill completes.
    const SimTime warmup = threads < 8 ? 1400 * kMillisecond : kGupsWarmup;
    const GupsRunOutput out =
        RunGupsSystem(system, config, GupsMachine(), std::nullopt, warmup,
                      kGupsWindow, sweep.host_workers, sweep.policy, &sweep,
                      Fmt("t%.0f", static_cast<double>(threads)));
    gups[cell] = out.result.gups;
  });

  for (size_t p = 0; p < thread_points.size(); ++p) {
    PrintCell(Fmt("%.0f", thread_points[p]));
    for (size_t s = 0; s < systems.size(); ++s) {
      PrintCell(gups[p * systems.size() + s]);
    }
    EndRow();
  }
  return 0;
}
