// Ablation: DMA configuration (paper Section 3.2).
// The paper determines experimentally that batches of 4 copy requests over 2
// concurrent I/OAT channels maximize migration throughput on their system.
// This sweep regenerates that experiment on the device model: raw migration
// throughput of 2 MiB page copies NVM->DRAM for each (batch, channels)
// configuration, plus the per-page write-protect window the configuration
// implies (larger batches hold pages under copy longer).

#include "bench_common.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  // Raw-device bench: no Machine, so the obs outputs have nothing to write,
  // but the sweep flags must parse so drivers can pass them uniformly.
  (void)ParseSweepArgs(argc, argv);
  PrintTitle("Ablation: DMA config", "migration throughput (GB/s) by batch x channels",
             "512 x 2 MiB page copies NVM->DRAM; wp = mean per-page copy window (us)");
  PrintCols({"batch", "ch1", "ch2", "ch4", "ch8", "wp_us_ch2"});

  for (const int batch : {1, 2, 4, 8, 16, 32}) {
    PrintCell(Fmt("%.0f", batch));
    double wp_ch2 = 0.0;
    for (const int channels : {1, 2, 4, 8}) {
      MemoryDevice dram(DeviceParams::Dram(GiB(192)));
      MemoryDevice nvm(DeviceParams::OptaneNvm(GiB(768)));
      DmaEngine dma;
      constexpr int kPages = 512;
      constexpr uint64_t kPage = MiB(2);
      SimTime t = 0;
      double wp_total = 0.0;
      for (int done = 0; done < kPages; done += batch) {
        const int n = std::min(batch, kPages - done);
        std::vector<CopyRequest> reqs(static_cast<size_t>(n),
                                      CopyRequest{&nvm, &dram, kPage});
        std::vector<SimTime> per_request;
        const SimTime start = t;
        t = dma.CopyBatch(t, reqs, channels, &per_request);
        for (const SimTime d : per_request) {
          wp_total += static_cast<double>(d - start);
        }
      }
      const double gbps = static_cast<double>(kPages) * kPage /
                          static_cast<double>(t) * 1e9 / (1024.0 * 1024.0 * 1024.0);
      PrintCell(gbps);
      if (channels == 2) {
        wp_ch2 = wp_total / kPages / 1000.0;
      }
    }
    PrintCell(wp_ch2);
    EndRow();
  }
  return 0;
}
