// Parallel sweep driver for the figure benches.
//
// Every figure bench is an embarrassingly parallel grid: independent
// (system x parameter-point) simulations whose only shared state is stdout
// and the optional report directory. ParallelFor runs those cells on a pool
// of host threads (each cell builds its own Machine, so cells share nothing),
// and callers write results into pre-sized slots indexed by cell — printing
// happens after the join, in grid order, so the output is byte-identical to
// a sequential run regardless of --jobs.
//
// Simulations themselves stay single-threaded and deterministic; parallelism
// here is purely across independent runs (host wall-clock, not simulated
// time).

#ifndef HEMEM_BENCH_SWEEP_H_
#define HEMEM_BENCH_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "policy/policy.h"

namespace hemem::bench {

struct SweepOptions {
  // Host threads for ParallelFor. 1 = sequential (the default); 0 is
  // normalized to 1 at parse time.
  int jobs = 1;
  // Optional x-axis override (--x-list=8,16,32): benches that support it
  // replace their built-in sweep points, letting CI run a 2-point smoke of a
  // 7-point figure. Empty = use the bench's defaults.
  std::vector<double> x_list;
  // Host workers for *intra*-simulation sharded epochs (--host-workers=N):
  // each cell's Machine calls EnableHostWorkers(N), so eligible quanta run
  // on N engine workers under epoch barriers (DESIGN.md "Parallel engine &
  // epoch barriers"). Results stay bit-identical to serial at any value.
  // Orthogonal to `jobs`, which parallelizes across independent cells; the
  // two multiply (jobs * host_workers threads at peak), so on small hosts
  // prefer raising jobs first — cell-level parallelism has no barrier cost.
  int host_workers = 1;
  // Migration policy (--policy=name[:spec], --policy-spec=...): forwarded to
  // every HeMem/Thermostat cell the bench builds. Validated at parse time; an
  // unknown name or bad spec exits 2 listing the registered policies.
  policy::PolicyChoice policy;
  // Per-cell observability outputs (--metrics-out=, --trace-out=,
  // --sample-ms=N): base paths from which every sweep cell derives its own
  // file name by splicing the cell id before the extension
  // ("m.json" + cell "gups-HeMem-ws64" -> "m-gups-HeMem-ws64.json"; see
  // bench_common.h CellOutName). sample_ms > 0 attaches a per-cell
  // MetricsSampler so the reports carry time series.
  std::string metrics_out;
  std::string trace_out;
  double sample_ms = 0.0;
  // Migration mode (--migration=exclusive|nomad): forwarded to every HeMem
  // cell the bench builds. "nomad" enables non-exclusive transactional
  // migration (DESIGN.md "Migration state machine"); report ids gain a
  // "-nomad" suffix so exclusive baselines are never overwritten.
  std::string migration = "exclusive";
};

// Parses --jobs=N, --host-workers=N, --x-list=a,b,c, --policy=...,
// --policy-spec=... and --migration=... out of argv. Unrecognized arguments are left for the
// caller (returned options ignore them), so benches with their own flags can
// parse both.
SweepOptions ParseSweepArgs(int argc, char** argv);

// Runs fn(0..n-1) on `jobs` host threads (capped at n). Work is handed out
// by atomic counter, so slow cells don't stall a fixed stripe. Blocks until
// every index completes. jobs <= 1 degenerates to a plain loop on the
// calling thread.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& fn);

// Monotonic wall-clock seconds since an arbitrary epoch; pairs of calls
// bracket sweep timing for BENCH_* reports.
double WallSeconds();

// Parallel host capacity, for recording alongside sweep timings (speedup
// from --jobs is bounded by this).
unsigned HostCores();

}  // namespace hemem::bench

#endif  // HEMEM_BENCH_SWEEP_H_
