// Figure 15: GAP betweenness centrality, graph exceeds DRAM
// (2^29 vertices on the paper's testbed; 2^19 at 1/1024 scale here).
// Paper shape: HeMem identifies the hot/written parts of the graph and
// migrates them to DRAM; page-table scanning (HeMem-PT-Async) overestimates
// the hot set, slowing early iterations by up to 3x before converging to
// HeMem's per-iteration time; Nimble averages ~36% slower than HeMem; both
// beat MM (58% / 16%).

#include "bc_bench.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  constexpr int kIterations = 5;
  PrintTitle("Figure 15", "BC per-iteration runtime, graph exceeds DRAM (ms)",
             "Kronecker 2^19 vertices / degree 16 at 1/1024 scale; lower is better");

  KroneckerConfig kconfig;
  kconfig.scale = kBcLargeScale;
  const CsrGraph graph = GenerateKronecker(kconfig);

  const std::vector<std::string> systems = {"HeMem", "HeMem-PT-Async", "Nimble", "MM"};
  std::vector<BcResult> results;
  for (const auto& system : systems) {
    results.push_back(
        RunBc(system, graph, kIterations, 8192.0, nullptr, &sweep, "large"));
  }

  std::vector<std::string> cols = {"iteration"};
  cols.insert(cols.end(), systems.begin(), systems.end());
  PrintCols(cols);
  for (int i = 0; i < kIterations; ++i) {
    PrintCell(Fmt("%.0f", i + 1));
    for (const auto& result : results) {
      PrintCell(static_cast<double>(result.iteration_time[static_cast<size_t>(i)]) / 1e6);
    }
    EndRow();
  }
  return 0;
}
