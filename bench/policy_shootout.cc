// Policy shoot-out: the registered migration policies head-to-head on the
// paper's GUPS shapes (Figure 5 uniform, Figure 6 static hot set, Figure 9
// dynamic hot set).
//
// Beyond throughput and migration traffic, each run reports `policy.regret`:
// the mean per-interval shortfall of the achieved DRAM access fraction
// against an oracle that always has the servable share of the working set in
// DRAM. It is computed post hoc from the observability time series (the
// MetricsSampler's device.{dram,nvm}.{loads,stores} deltas over the measured
// window), so policies are scored on what the devices actually saw, not on
// what they claim. 0 = every interval matched the oracle; 0.3 = on average
// 30% of accesses that could have been DRAM hits went to NVM instead.
//
// Output: a table on stdout and BENCH_policy.json (override with --out=...).
// --jobs/--host-workers parallelize as in the figure benches; cells stay
// deterministic. When HEMEM_REPORT_DIR is set, each cell also writes its
// full run report with the regret attached as metadata. --policy-spec=...
// replaces the built-in scheme ruleset (tuning runs), and --x-list=0,2
// selects workload indices (0 = uniform, 1 = static hot set, 2 = shift, 3 = large-hot shift) the
// way the figure benches use it for CI smokes.

#include <cstring>
#include <string>
#include <vector>

#include "gups_bench.h"
#include "obs/sampler.h"
#include "sweep.h"

using namespace hemem;
using namespace hemem::bench;

namespace {

// A DAMON-style ruleset tuned for reactivity: promote NVM pages that
// accumulate 6+ surviving accesses within the current cooling epoch (the
// default needs 8 reads or 4 writes regardless of age), falling through to
// the paper thresholds otherwise. Lowering the bar further (min_acc 1-4)
// over-promotes sparsely-sampled cold pages and loses more GUPS to
// write-protection stalls and migration bandwidth than the earlier
// promotions win back; min_acc=6 scoped to the live epoch promotes the
// post-shift hot set roughly one epoch earlier at near-zero extra traffic,
// beating the default on both GUPS and regret on fig9-shift-large.
constexpr const char* kSchemeSpec = "hot:tier=1,min_acc=6,max_age=0";

struct PolicyUnderTest {
  const char* label;
  policy::PolicyChoice choice;
};

struct WorkloadCase {
  const char* name;
  GupsConfig config;
  SimTime warmup = kGupsWarmup;
  SimTime window = kGupsWindow;
};

struct CellResult {
  double gups = 0.0;
  uint64_t bytes_migrated = 0;
  uint64_t pages_promoted = 0;
  uint64_t pages_demoted = 0;
  double regret = 0.0;
  obs::MigrationAudit::Summary audit;
};

const SweepOptions* g_sweep = nullptr;

// Best-case DRAM fraction for a hot-set workload: the oracle pins the hot
// set (it fits DRAM in every case here) and fills the remaining DRAM with
// cold data.
double OracleDramFrac(const GupsConfig& config, uint64_t dram_bytes) {
  const double ws = static_cast<double>(config.working_set);
  const double dram = static_cast<double>(dram_bytes);
  if (config.hot_set == 0) {
    return std::min(1.0, dram / ws);
  }
  const double hot = static_cast<double>(config.hot_set);
  const double cold_in_dram =
      std::min(1.0, std::max(0.0, dram - hot) / std::max(1.0, ws - hot));
  return config.hot_fraction + (1.0 - config.hot_fraction) * cold_in_dram;
}

CellResult RunCell(const WorkloadCase& wl, const policy::PolicyChoice& choice,
                   int host_workers) {
  const MachineConfig machine_config = GupsMachine();
  Machine machine(machine_config);
  // The shoot-out always runs under access observation: the audit trail is
  // what turns the scalar regret into per-decision attribution below.
  // Observation is golden-pinned bit-identical, so the scores don't move.
  machine.EnableAccessObservation();
  std::optional<CellObs> cell_obs;
  if (g_sweep != nullptr) {
    cell_obs.emplace(machine, *g_sweep);
  }
  machine.EnableHostWorkers(host_workers);
  // Sample every 10 ms of virtual time; an observer thread, so the simulated
  // execution (and any golden fingerprint) is untouched.
  constexpr SimTime kSamplePeriod = 10 * kMillisecond;
  obs::MetricsSampler sampler(machine.metrics(), kSamplePeriod);
  machine.engine().AddObserverThread(&sampler);

  auto manager = MakeSystem("HeMem", machine, choice);
  manager->Start();

  GupsConfig config = wl.config;
  config.updates_per_thread = ~0ull >> 2;
  config.measure_after = wl.warmup;
  GupsBenchmark gups(*manager, config);
  gups.Prepare();

  CellResult cell;
  cell.gups = gups.Run(wl.warmup + wl.window).gups;
  cell.bytes_migrated = manager->stats().bytes_migrated;
  cell.pages_promoted = manager->stats().pages_promoted;
  cell.pages_demoted = manager->stats().pages_demoted;

  // Regret over the measured window, from the device delta series.
  const auto& series = sampler.series();
  const auto get = [&](const char* name) -> const TimeSeries* {
    const auto it = series.find(name);
    return it == series.end() ? nullptr : &it->second;
  };
  const TimeSeries* dram_loads = get("device.dram.loads");
  const TimeSeries* dram_stores = get("device.dram.stores");
  const TimeSeries* nvm_loads = get("device.nvm.loads");
  const TimeSeries* nvm_stores = get("device.nvm.stores");
  const double oracle = OracleDramFrac(wl.config, machine_config.dram_bytes);
  const auto at = [](const TimeSeries* s, size_t i) {
    return s != nullptr && i < s->buckets().size() ? s->buckets()[i] : 0.0;
  };
  size_t buckets = 0;
  for (const TimeSeries* s : {dram_loads, dram_stores, nvm_loads, nvm_stores}) {
    if (s != nullptr) {
      buckets = std::max(buckets, s->buckets().size());
    }
  }
  const size_t first = static_cast<size_t>(wl.warmup / kSamplePeriod);
  double regret_sum = 0.0;
  size_t regret_n = 0;
  for (size_t i = first; i < buckets; ++i) {
    const double dram = at(dram_loads, i) + at(dram_stores, i);
    const double total = dram + at(nvm_loads, i) + at(nvm_stores, i);
    if (total <= 0.0) {
      continue;
    }
    regret_sum += std::max(0.0, oracle - dram / total);
    regret_n++;
  }
  cell.regret = regret_n == 0 ? 0.0 : regret_sum / static_cast<double>(regret_n);
  cell.audit = machine.observation()->audit().Summarize();

  MaybeWriteReport(machine, std::string("shootout-") + wl.name + "-" + choice.name,
                   {{"workload", wl.name},
                    {"policy", choice.name},
                    {"policy.regret", Fmt("%.4f", cell.regret)}});
  if (cell_obs.has_value()) {
    cell_obs->Finish(std::string("shootout-") + wl.name + "-" + choice.name,
                     {{"workload", wl.name}, {"policy", choice.name}});
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions sweep = ParseSweepArgs(argc, argv);
  std::string out_path = "BENCH_policy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  const std::string scheme_spec =
      sweep.policy.spec.empty() ? kSchemeSpec : sweep.policy.spec;
  const std::vector<PolicyUnderTest> policies = {
      {"default", {"default", ""}},
      {"perceptron", {"perceptron", ""}},
      {"scheme", {"scheme", scheme_spec}},
  };

  std::vector<WorkloadCase> workloads;
  {
    // Figure 5 shape past DRAM capacity: 256 GB uniform over 192 GB DRAM.
    WorkloadCase uniform;
    uniform.name = "fig5-uniform-256";
    uniform.config.threads = 16;
    uniform.config.working_set = PaperGiB(256);
    uniform.config.hot_set = 0;
    uniform.warmup = 200 * kMillisecond;
    workloads.push_back(uniform);
  }
  {
    // Figure 6 shape: the paper's standard 512 GB / 16 GB hot configuration.
    WorkloadCase hotset;
    hotset.name = "fig6-hotset-16";
    hotset.config = StandardHotGups();
    hotset.warmup = 700 * kMillisecond;
    workloads.push_back(hotset);
  }
  {
    // Figure 9 shape: 4 GB of the hot set shifts at t=300 ms; the measured
    // window spans the shift, so reaction speed dominates the score.
    WorkloadCase shift;
    shift.name = "fig9-shift-4";
    shift.config = StandardHotGups();
    shift.config.shift_at = 300 * kMillisecond;
    shift.config.shift_bytes = PaperGiB(4);
    shift.warmup = 100 * kMillisecond;
    shift.window = 500 * kMillisecond;
    workloads.push_back(shift);
  }
  {
    // Figure 9 variant with a large, sparse hot set: 64 GB hot (4x the
    // paper's standard) with 16 GB shifting. Per-page sample density is 4x
    // lower, so threshold counters build slowly and classification latency —
    // not migration bandwidth — limits recovery. This is the regime where a
    // more reactive policy can beat the paper default.
    WorkloadCase shift;
    shift.name = "fig9-shift-large";
    shift.config = StandardHotGups();
    shift.config.hot_set = PaperGiB(64);
    shift.config.shift_at = 300 * kMillisecond;
    shift.config.shift_bytes = PaperGiB(16);
    shift.warmup = 100 * kMillisecond;
    shift.window = 500 * kMillisecond;
    workloads.push_back(shift);
  }
  if (!sweep.x_list.empty()) {
    std::vector<WorkloadCase> picked;
    for (const double x : sweep.x_list) {
      const size_t idx = static_cast<size_t>(x);
      if (idx < workloads.size()) {
        picked.push_back(workloads[idx]);
      }
    }
    workloads = std::move(picked);
  }

  g_sweep = &sweep;
  PrintTitle("Policy shoot-out", "registered policies on the GUPS shapes",
             "regret = mean DRAM-hit shortfall vs oracle placement over the "
             "measured window; good/churn/pong classify individual decisions");
  PrintCols({"workload", "policy", "GUPS", "migr_MB", "promoted", "demoted", "regret",
             "good", "churn", "pong"});

  std::vector<CellResult> cells(workloads.size() * policies.size());
  const double t0 = WallSeconds();
  ParallelFor(cells.size(), sweep.jobs, [&](size_t cell) {
    const WorkloadCase& wl = workloads[cell / policies.size()];
    const PolicyUnderTest& put = policies[cell % policies.size()];
    cells[cell] = RunCell(wl, put.choice, sweep.host_workers);
  });
  const double elapsed = WallSeconds() - t0;

  for (size_t w = 0; w < workloads.size(); ++w) {
    for (size_t p = 0; p < policies.size(); ++p) {
      const CellResult& cell = cells[w * policies.size() + p];
      PrintCell(workloads[w].name);
      PrintCell(policies[p].label);
      PrintCell(cell.gups);
      PrintCell(Fmt("%.1f", static_cast<double>(cell.bytes_migrated) / 1048576.0));
      PrintCell(Fmt("%.0f", static_cast<double>(cell.pages_promoted)));
      PrintCell(Fmt("%.0f", static_cast<double>(cell.pages_demoted)));
      PrintCell(Fmt("%.4f", cell.regret));
      PrintCell(Fmt("%.0f", static_cast<double>(cell.audit.good_promotions +
                                                cell.audit.good_demotions)));
      PrintCell(Fmt("%.0f", static_cast<double>(cell.audit.churn_promotions +
                                                cell.audit.premature_demotions)));
      PrintCell(Fmt("%.0f", static_cast<double>(cell.audit.ping_pongs)));
      EndRow();
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"policy_shootout\",\n");
  std::fprintf(f, "  \"scheme_spec\": \"%s\",\n", scheme_spec.c_str());
  std::fprintf(f, "  \"jobs\": %d,\n  \"host_workers\": %d,\n", sweep.jobs,
               sweep.host_workers);
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", elapsed);
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t w = 0; w < workloads.size(); ++w) {
    const double oracle = OracleDramFrac(workloads[w].config, GupsMachine().dram_bytes);
    std::fprintf(f, "    {\"workload\": \"%s\", \"oracle_dram_frac\": %.4f, \"policies\": [\n",
                 workloads[w].name, oracle);
    for (size_t p = 0; p < policies.size(); ++p) {
      const CellResult& cell = cells[w * policies.size() + p];
      std::fprintf(f,
                   "      {\"policy\": \"%s\", \"gups\": %.6f, \"bytes_migrated\": %llu, "
                   "\"pages_promoted\": %llu, \"pages_demoted\": %llu, "
                   "\"regret\": %.6f,\n"
                   "       \"audit\": {\"passes\": %llu, \"migrations\": %llu, "
                   "\"aborted\": %llu, \"good_promotions\": %llu, "
                   "\"churn_promotions\": %llu, \"good_demotions\": %llu, "
                   "\"premature_demotions\": %llu, \"ping_pongs\": %llu}}%s\n",
                   policies[p].label, cell.gups,
                   static_cast<unsigned long long>(cell.bytes_migrated),
                   static_cast<unsigned long long>(cell.pages_promoted),
                   static_cast<unsigned long long>(cell.pages_demoted), cell.regret,
                   static_cast<unsigned long long>(cell.audit.passes),
                   static_cast<unsigned long long>(cell.audit.migrations),
                   static_cast<unsigned long long>(cell.audit.aborted),
                   static_cast<unsigned long long>(cell.audit.good_promotions),
                   static_cast<unsigned long long>(cell.audit.churn_promotions),
                   static_cast<unsigned long long>(cell.audit.good_demotions),
                   static_cast<unsigned long long>(cell.audit.premature_demotions),
                   static_cast<unsigned long long>(cell.audit.ping_pongs),
                   p + 1 < policies.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s (%.1fs)\n", out_path.c_str(), elapsed);
  return 0;
}
